// sihle-lint: disable-file=R005 — this driver *reports* host wall-clock
// time (ShardWorkloadResult::wall_seconds, the parallel-simulation payoff
// metric); the reading never feeds a simulation decision.
#include "harness/shard_workload.h"

#include <chrono>
#include <memory>
#include <vector>

#include "ds/hashtable.h"
#include "elision/elided_lock.h"
#include "harness/zipf.h"
#include "runtime/ctx.h"
#include "runtime/domains.h"
#include "sim/rng.h"

namespace sihle::harness {

namespace {

using runtime::Ctx;
using runtime::DomainSet;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9E3779B97F4A7C15ULL);
  return sim::splitmix64(s);
}

sim::Task<void> op_insert(Ctx& c, ds::HashTable& t, std::int64_t k) {
  const bool r = co_await t.insert(c, k);
  (void)r;
}
sim::Task<void> op_erase(Ctx& c, ds::HashTable& t, std::int64_t k) {
  const bool r = co_await t.erase(c, k);
  (void)r;
}
sim::Task<void> op_lookup(Ctx& c, ds::HashTable& t, std::int64_t k) {
  const bool r = co_await t.contains(c, k);
  (void)r;
}

struct Shard {
  std::unique_ptr<elision::ElidedLock> lock;
  std::unique_ptr<ds::HashTable> table;
  std::uint64_t ops = 0;  // this shard's slice of the operation budget
};

struct WorkerArgs {
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::uint64_t ops = 0;
  int update_pct = 0;
  std::uint64_t remote_every = 0;
  const Zipf* zipf = nullptr;
  ds::HashTable* table = nullptr;
  elision::ElidedLock* lock = nullptr;
  elision::Policy policy;
  DomainSet* set = nullptr;
  mem::Shared<std::uint64_t>* telemetry = nullptr;
  stats::OpStats* st = nullptr;
};

sim::Task<void> worker(Ctx& c, WorkerArgs a) {
  for (std::uint64_t i = 0; i < a.ops; ++i) {
    // The shard serves its slice of the global Zipfian stream: draw from
    // the full key universe, keep the keys this shard owns.  Rejected
    // draws cost rng draws only (request routing is free; executing the
    // request is what the simulation prices).
    std::int64_t key;
    do {
      key = static_cast<std::int64_t>(a.zipf->draw(c.rng()));
    } while (shard_of_key(key, a.shards) != a.shard);
    const int dice = static_cast<int>(c.rng().below(100));
    ds::HashTable& t = *a.table;
    if (dice < a.update_pct / 2) {
      co_await elision::run_cs(
          a.policy, c, *a.lock,
          [&t, key](Ctx& cc) { return op_insert(cc, t, key); }, *a.st);
    } else if (dice < a.update_pct) {
      co_await elision::run_cs(
          a.policy, c, *a.lock,
          [&t, key](Ctx& cc) { return op_erase(cc, t, key); }, *a.st);
    } else {
      co_await elision::run_cs(
          a.policy, c, *a.lock,
          [&t, key](Ctx& cc) { return op_lookup(cc, t, key); }, *a.st);
    }
    if (a.remote_every != 0 && (i + 1) % a.remote_every == 0) {
      // Telemetry handoff: a non-transactional cross-domain fetch-add on
      // the shard-0 counter, resolved at the next epoch barrier.
      (void)co_await a.set->remote_fetch_add(c, 0, *a.telemetry,
                                             std::uint64_t{1});
    }
  }
}

}  // namespace

ShardWorkloadResult run_shard_workload(const ShardWorkloadConfig& cfg) {
  const std::size_t shards = cfg.shards == 0 ? 1 : cfg.shards;
  const int tps = cfg.threads_per_shard < 1 ? 1 : cfg.threads_per_shard;

  DomainSet::Config dc;
  dc.seed = cfg.seed;
  dc.domains = shards;
  dc.host_threads = cfg.domain_threads;
  dc.epoch_cycles = cfg.epoch_cycles;
  dc.machine.costs = cfg.costs;
  dc.machine.htm.spurious_abort_per_access = cfg.spurious;
  dc.machine.htm.persistent_abort_per_tx = cfg.persistent;
  DomainSet set(dc);
  if (cfg.hash_timeline) set.attach_traces();

  const Zipf zipf(cfg.keyspace, cfg.zipf_s);

  // Partition the operation budget by each shard's share of the key-stream
  // probability mass (cumulative rounding so the slices sum exactly to
  // total_ops).  Skew concentrates the budget on hot shards.
  std::vector<double> mass(shards, 0.0);
  for (std::size_t k = 0; k < cfg.keyspace; ++k) {
    mass[shard_of_key(static_cast<std::int64_t>(k), shards)] += zipf.mass(k);
  }
  std::vector<Shard> shard_state(shards);
  {
    double cum = 0.0;
    std::uint64_t assigned = 0;
    for (std::size_t d = 0; d < shards; ++d) {
      cum += mass[d];
      const auto upto = static_cast<std::uint64_t>(
          static_cast<double>(cfg.total_ops) * cum + 0.5);
      shard_state[d].ops = upto - assigned;
      assigned = upto;
    }
  }

  // Per-domain lock then table — the same sync-line allocation order the
  // single-machine workloads use.
  for (std::size_t d = 0; d < shards; ++d) {
    shard_state[d].lock = std::make_unique<elision::ElidedLock>(
        set.domain(d), cfg.lock, cfg.scheme.conflict.aux);
    shard_state[d].table = std::make_unique<ds::HashTable>(
        set.domain(d), std::max<std::size_t>(cfg.buckets_per_shard, 4));
  }
  // The cross-domain telemetry counter lives on shard 0.
  runtime::LineHandle telemetry_line(set.domain(0));
  mem::Shared<std::uint64_t> telemetry(telemetry_line.line(), 0);

  // Deterministic pre-fill: every key owned by a shard joins its table with
  // probability 1/2, from one host-side rng (independent of shard count in
  // draw order, so refactoring the sharding never silently reseeds).
  {
    sim::Rng fill(cfg.seed ^ 0xF111F111ULL);
    for (std::size_t k = 0; k < cfg.keyspace; ++k) {
      const bool put = fill.chance(0.5);
      if (!put) continue;
      const auto key = static_cast<std::int64_t>(k);
      shard_state[shard_of_key(key, shards)].table->debug_insert(key);
    }
  }

  std::vector<stats::OpStats> per_thread(shards * static_cast<std::size_t>(tps));
  for (std::size_t d = 0; d < shards; ++d) {
    const std::uint64_t base = shard_state[d].ops / static_cast<std::uint64_t>(tps);
    const std::uint64_t extra = shard_state[d].ops % static_cast<std::uint64_t>(tps);
    for (int t = 0; t < tps; ++t) {
      WorkerArgs a;
      a.shard = d;
      a.shards = shards;
      a.ops = base + (static_cast<std::uint64_t>(t) < extra ? 1 : 0);
      a.update_pct = cfg.update_pct;
      a.remote_every = cfg.remote_every;
      a.zipf = &zipf;
      a.table = shard_state[d].table.get();
      a.lock = shard_state[d].lock.get();
      a.policy = cfg.scheme;
      a.set = &set;
      a.telemetry = &telemetry;
      a.st = &per_thread[d * static_cast<std::size_t>(tps) +
                         static_cast<std::size_t>(t)];
      set.spawn(d, [a](Ctx& c) { return worker(c, a); });
    }
  }

  const auto wall0 = std::chrono::steady_clock::now();
  set.run();
  const auto wall1 = std::chrono::steady_clock::now();

  ShardWorkloadResult out;
  for (const auto& st : per_thread) out.stats += st;
  out.makespan = set.max_clock();
  out.total_events = set.total_events();
  out.epochs = set.epochs();
  out.remote_ops = set.remote_ops();
  out.telemetry = telemetry.debug_value();  // sihle-lint: disable=R002 (post-run readback)
  out.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  out.ops_per_mcycle =
      out.makespan == 0 ? 0.0
                        : static_cast<double>(out.stats.ops()) * 1e6 /
                              static_cast<double>(out.makespan);

  out.tables_valid = true;
  std::uint64_t h = 0x5141A5D5ULL;
  for (std::size_t d = 0; d < shards; ++d) {
    if (!shard_state[d].table->debug_validate()) out.tables_valid = false;
    h = mix(h, shard_state[d].table->debug_size());
  }
  for (std::size_t k = 0; k < cfg.keyspace; ++k) {
    const auto key = static_cast<std::int64_t>(k);
    const bool present =
        shard_state[shard_of_key(key, shards)].table->debug_contains(key);
    h = mix(h, (k << 1) | (present ? 1 : 0));
  }
  h = mix(h, out.telemetry);
  h = mix(h, out.remote_ops);
  h = mix(h, out.makespan);
  h = mix(h, out.total_events);
  out.fingerprint = h;

  if (cfg.hash_timeline) {
    std::uint64_t th = 0x71AE11EULL;
    for (const DomainSet::MergedEvent& e : set.merged_timeline()) {
      th = mix(th, e.event.at);
      th = mix(th, (static_cast<std::uint64_t>(e.domain) << 32) | e.tid);
      th = mix(th, (static_cast<std::uint64_t>(e.event.kind) << 16) |
                       (static_cast<std::uint64_t>(e.event.cause) << 8) |
                       e.event.code);
    }
    out.timeline_hash = th;
  }
  return out;
}

}  // namespace sihle::harness
