// Deterministic per-thread random number generation.
//
// Every logical thread owns an Xoshiro-style generator seeded from the
// machine seed and the thread id, so complete runs are reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>

namespace sihle::sim {

// SplitMix64: used to expand seeds; good avalanche properties.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xorshift128+ generator: fast, deterministic, adequate statistical quality
// for workload generation and abort injection.
class Rng {
 public:
  Rng() : Rng(0x853C49E6748FEA9BULL) {}
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace sihle::sim
