// Size-bucketed recycling pool for coroutine frames.
//
// Every simulated memory access suspends through at least one Task frame,
// and workload code (tree operations, retry loops, with_tx bodies) calls a
// fresh coroutine per operation — so the default malloc-per-frame is the
// simulator's single largest steady-state allocation source.  The pool
// recycles frames in 64-byte size buckets: after the first few operations
// warm the buckets, frame allocation is a pop from a free list and frame
// destruction a push, and the measurement loop stops exercising the host
// allocator entirely (cf. the malloc-placement sensitivity of real TSX
// measurements, PAPERS.md "Malloc placement study").
//
// Wiring: sim::Task and sim::RootTask promises route their frame
// new/delete here.  A pool is installed per host thread with the RAII
// ActiveFramePool guard (runtime::Machine activates its own pool around
// spawn() and run()); frames allocated with no active pool fall through to
// plain operator new.  Each allocation carries a header naming its origin,
// so a frame may safely outlive the pool that served it and be freed while
// a different pool (or none) is active — the header, not the active
// pointer, decides where the memory goes back to.
//
// Not thread-safe: a pool must be used from one host thread at a time
// (each engine worker owns its Machines, hence its pools).  Ownership is
// explicitly thread-affine but *rebindable*: installing the pool with
// ActiveFramePool binds it to the installing host thread, which is how a
// per-domain pool legally migrates between epoch-loop workers
// (runtime/domains.h) — the epoch barrier provides the happens-before.
// Debug builds assert that every pooled allocation and free-list release
// happens on the currently bound thread, so an unsynchronized cross-thread
// release fails loudly instead of corrupting the free lists.
//
// Under AddressSanitizer the pool serves every request from the host
// allocator and never recycles, so ASan retains byte-exact use-after-free
// detection on coroutine frames (the abort-path unwind tests rely on it).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

// SIHLE_NO_FRAME_POOL=1 in the environment forces every coroutine frame
// through the host allocator at runtime (diagnostics: bisecting a crash
// between frame-recycling effects and everything else without a rebuild).

namespace sihle::sim {

#if defined(__SANITIZE_ADDRESS__)
inline constexpr bool kFramePoolRecycles = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
inline constexpr bool kFramePoolRecycles = false;
#else
inline constexpr bool kFramePoolRecycles = true;
#endif
#else
inline constexpr bool kFramePoolRecycles = true;
#endif

class FramePool {
 public:
  // Frames above this size are rare (deep inlined workload frames); they
  // bypass the pool rather than pin large blocks in free lists.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooledBytes = 8192;

  FramePool() : ctrl_(new Control{this, 0}) {}

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  ~FramePool() {
    assert(active() != this && "destroying the active frame pool");
    for (auto& bucket : free_) {
      for (void* block : bucket) std::free(block);
    }
    if (ctrl_->live == 0) {
      delete ctrl_;
    } else {
      // Outstanding frames: orphan them.  Their headers still point at the
      // control block; each late free returns to the host allocator and the
      // last one deletes the control block.
      ctrl_->pool = nullptr;
    }
  }

  // The pool new Task frames on this host thread are served from (null =
  // plain operator new).  Installed via ActiveFramePool.
  static FramePool*& active() {
    thread_local FramePool* pool = nullptr;
    return pool;
  }

  static bool recycling_enabled() {
    static const bool on =
        kFramePoolRecycles && std::getenv("SIHLE_NO_FRAME_POOL") == nullptr;
    return on;
  }

  static void* allocate(std::size_t n) {
    const std::size_t total = round_up(n + sizeof(Header));
    FramePool* pool = recycling_enabled() ? active() : nullptr;
    if (pool == nullptr || total > kMaxPooledBytes) {
      auto* h = static_cast<Header*>(std::malloc(total));
      if (h == nullptr) throw std::bad_alloc();
      h->ctrl = nullptr;
      h->bucket = 0;
      return h + 1;
    }
    return pool->pooled_allocate(total);
  }

  static void deallocate(void* p) noexcept {
    if (p == nullptr) return;
    Header* h = static_cast<Header*>(p) - 1;
    Control* ctrl = h->ctrl;
    if (ctrl == nullptr) {
      std::free(h);
      return;
    }
    --ctrl->live;
    if (ctrl->pool != nullptr) {
      // Cross-thread release would race the owner's free-list pushes and
      // corrupt them silently; the owner is rebound on activation
      // (ActiveFramePool) and at Machine teardown, so a failure here means a
      // frame was freed from a host thread the pool was never handed to.
      assert(ctrl->pool->bound_thread_ == std::this_thread::get_id() &&
             "FramePool: frame released on a thread the pool is not bound to");
      ctrl->pool->free_[h->bucket].push_back(h);
    } else {
      std::free(h);
      if (ctrl->live == 0) delete ctrl;
    }
  }

  // Re-binds pool ownership to the calling host thread.  Legal only when the
  // caller has synchronized with every prior user of the pool (the epoch
  // barrier, a thread join, ...).  ActiveFramePool does this on install;
  // Machine::~Machine does it so a machine last run on a pool worker can be
  // destroyed by its owner.
  void bind_to_this_thread() { bound_thread_ = std::this_thread::get_id(); }

  // --- Introspection (tests, docs/PERFORMANCE.md) --------------------------
  std::uint64_t served() const { return served_; }        // pooled requests
  std::uint64_t recycled() const { return recycled_; }    // served from a free list
  std::uint64_t fresh() const { return served_ - recycled_; }
  std::uint64_t outstanding() const { return ctrl_->live; }

 private:
  struct Control {
    FramePool* pool;    // null once the pool is destroyed (orphaned frames)
    std::uint64_t live; // frames allocated from the pool and not yet freed
  };
  // Prefixed to every allocation; 16 bytes keeps malloc's 16-byte alignment
  // for the frame payload.
  struct Header {
    Control* ctrl;       // null: plain malloc block, free with std::free
    std::uint32_t bucket;
    std::uint32_t reserved = 0;
  };
  static_assert(sizeof(Header) == 16);
  static_assert(alignof(std::max_align_t) <= 16);

  static constexpr std::size_t round_up(std::size_t n) {
    return (n + kGranularity - 1) & ~(kGranularity - 1);
  }

  void* pooled_allocate(std::size_t total) {
    assert(bound_thread_ == std::this_thread::get_id() &&
           "FramePool: allocation on a thread the pool is not bound to");
    const std::uint32_t bucket = static_cast<std::uint32_t>(total / kGranularity - 1);
    ++served_;
    ++ctrl_->live;
    auto& list = free_[bucket];
    Header* h;
    if (!list.empty()) {
      ++recycled_;
      h = static_cast<Header*>(list.back());
      list.pop_back();
    } else {
      h = static_cast<Header*>(std::malloc(total));
      if (h == nullptr) {
        --ctrl_->live;
        throw std::bad_alloc();
      }
    }
    h->ctrl = ctrl_;
    h->bucket = bucket;
    return h + 1;
  }

  static constexpr std::size_t kBuckets = kMaxPooledBytes / kGranularity;

  Control* ctrl_;
  std::vector<void*> free_[kBuckets];
  std::uint64_t served_ = 0;
  std::uint64_t recycled_ = 0;
  // Host thread the pool is currently affine to (see bind_to_this_thread).
  std::thread::id bound_thread_ = std::this_thread::get_id();
};

// Installs `pool` as the thread's active frame pool for the current scope.
class ActiveFramePool {
 public:
  explicit ActiveFramePool(FramePool* pool) : prev_(FramePool::active()) {
    FramePool::active() = pool;
    // Activation is the ownership handoff point: the installer must already
    // have synchronized with the pool's previous user.
    if (pool != nullptr) pool->bind_to_this_thread();
  }
  ActiveFramePool(const ActiveFramePool&) = delete;
  ActiveFramePool& operator=(const ActiveFramePool&) = delete;
  ~ActiveFramePool() { FramePool::active() = prev_; }

 private:
  FramePool* prev_;
};

}  // namespace sihle::sim
