// Virtual-time cost model.
//
// Every simulated event charges the issuing logical thread a number of
// virtual cycles.  The constants below are order-of-magnitude figures for a
// Haswell-class part (3.4 GHz Core i7-4770 in the paper); the ablation bench
// `ablation_costmodel` demonstrates that the paper's qualitative results are
// insensitive to the exact values.
#pragma once

#include <cstdint>

namespace sihle::sim {

using Cycles = std::uint64_t;

struct CostModel {
  // Plain (non-transactional) load / store of a shared line.  Shared-data
  // accesses in a contended multi-core run are dominated by coherence
  // misses (L2/L3/remote-L1 transfers), not L1 hits, so the blended cost is
  // a few dozen cycles.  This ratio of critical-section length to abort
  // cost is what the retry-policy dynamics (§7.1) hinge on; see the
  // ablation_costmodel bench.
  Cycles mem_access = 40;
  // Atomic read-modify-write (CAS / SWAP / F&A): locked bus operation.
  Cycles rmw = 60;
  // Transactional load / store (read- or write-set bookkeeping included).
  Cycles tx_access = 40;
  // XBEGIN: checkpoint registers, enter speculation.
  Cycles tx_begin = 40;
  // XEND: commit, publish write set.
  Cycles tx_commit = 50;
  // Abort: discard speculative state, restore checkpoint, reach handler.
  // Measured TSX abort round trips are ~150-200 cycles.
  Cycles tx_abort = 170;
  // One iteration of a spin-wait loop (test + pause).
  Cycles spin_iter = 10;
  // Latency from a store publishing to a waiter observing the new value
  // (coherence propagation).
  Cycles wake_latency = 40;
  // Charged when a blocked thread is woken (reload of the watched line).
  Cycles wake_reload = 12;
  // Cross-domain access (runtime/domains.h): a line owned by another lock
  // domain is reached through the epoch barrier, modelling a remote-socket
  // round trip.  The issuing thread resumes this many cycles after issue.
  Cycles remote_access = 200;

  // One "unit" of private computation, used by workloads via Ctx::work().
  Cycles work_unit = 1;

  // Virtual cycles per simulated millisecond (paper machine: 3.4 GHz).
  Cycles cycles_per_ms = 3'400'000;
};

}  // namespace sihle::sim
