#include "sim/executor.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace sihle::sim {

namespace {
// The root wrapper owns the thread body task in its frame; destroying the
// root handle unwinds the whole suspended call chain.
RootTask make_root(Task<void> body) { co_await std::move(body); }
}  // namespace

Executor::~Executor() {
  for (auto& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

std::uint32_t Executor::spawn(Task<void> root) {
  if (threads_.size() >= kMaxThreads) {
    throw std::runtime_error("Executor: too many logical threads");
  }
  const auto id = static_cast<std::uint32_t>(threads_.size());
  ThreadState ts;
  ts.id = id;
  std::uint64_t sm = seed_ + 0x100 + id;
  ts.rng = Rng(splitmix64(sm));
  threads_.push_back(ts);
  runnable_mask_ |= 1ULL << id;

  RootTask wrapper = make_root(std::move(root));
  wrapper.handle.promise().ts = nullptr;  // fixed up below (vector may move)
  roots_.push_back(wrapper);
  return id;
}

std::uint32_t Executor::pick_next() {
  // Model-checking mode: the installed hook owns the scheduling decision
  // entirely.  The hook is null on normal runs, so the min-clock scan below
  // (and its RNG draw order) is untouched.
  if (choice_ != nullptr) {
    return runnable_mask_ == 0 ? kInvalidThread
                               : choice_->pick_thread(runnable_mask_);
  }
  // Iterating the runnable mask via countr_zero visits candidates in
  // ascending thread id — the same order as the historical scan over all
  // threads — so the comparisons and reservoir-sampling RNG draws below are
  // reproduced exactly (tests/rng_draworder_test.cpp locks this in).
  std::uint32_t best = kInvalidThread;
  Cycles best_clock = std::numeric_limits<Cycles>::max();
  std::uint32_t ties = 0;
  std::uint64_t mask = runnable_mask_;
  while (mask != 0) {
    const auto tid = static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    const ThreadState& t = threads_[tid];
    if (t.clock < best_clock) {
      best = tid;
      best_clock = t.clock;
      ties = 1;
    } else if (random_tie_break_ && t.clock == best_clock) {
      // Reservoir-sample among equal-clock threads: still deterministic for
      // a given seed, but explores different interleavings than strict
      // lowest-id order (schedule fuzzing for the concurrency tests).
      ++ties;
      if (sched_rng_.below(ties) == 0) best = tid;
    }
  }
  return best;
}

void Executor::finish(ThreadState& t) {
  t.state = RunState::kFinished;
  runnable_mask_ &= ~(1ULL << t.id);
}

void Executor::run() {
  if (run_until(kNoHorizon) == RunOutcome::kAllBlocked) {
    throw std::runtime_error("Executor: deadlock — all live threads blocked");
  }
}

RunOutcome Executor::run_until(Cycles horizon) {
  // Fix up promise back-pointers and initial resume points now that the
  // thread vector is stable.  Idempotent, so the epoch loop may call
  // run_until repeatedly (no spawns are permitted once a run has started).
  for (std::uint32_t i = 0; i < threads_.size(); ++i) {
    roots_[i].handle.promise().ts = &threads_[i];
    if (!threads_[i].resume_point) threads_[i].resume_point = roots_[i].handle;
  }

  while (true) {
    const std::uint32_t next = pick_next();
    if (next == kInvalidThread) {
      if (blocked_mask_ == 0) return RunOutcome::kFinished;
      return RunOutcome::kAllBlocked;
    }
    ThreadState& t = threads_[next];
    // pick_next returns a minimum-clock runnable thread, so once it is past
    // the horizon every runnable thread is.  Never taken under run()'s
    // kNoHorizon, keeping the sequential event loop bit-for-bit intact.
    if (t.clock >= horizon) return RunOutcome::kHorizon;
    current_ = next;
    t.events++;
    t.resume_point.resume();
    if (t.failure) {
      finish(t);
      std::rethrow_exception(std::exchange(t.failure, nullptr));
    }
    if (roots_[next].handle.done()) finish(t);
  }
}

Cycles Executor::max_clock() const {
  Cycles m = 0;
  for (const auto& t : threads_) m = std::max(m, t.clock);
  return m;
}

void Executor::watch(std::uint32_t line, std::uint32_t tid) {
  if (line >= line_watchers_.size()) {
    line_watchers_.resize(std::max<std::size_t>(static_cast<std::size_t>(line) + 1,
                                                line_watchers_.size() * 2),
                          0);
  }
  line_watchers_[line] |= 1ULL << tid;
}

void Executor::unwatch(std::uint32_t line, std::uint32_t tid) {
  if (line != kInvalidLine && line < line_watchers_.size()) {
    line_watchers_[line] &= ~(1ULL << tid);
  }
}

void Executor::block_current_on_line(std::uint32_t line, std::coroutine_handle<> h,
                                     std::uint32_t line2) {
  ThreadState& t = threads_[current_];
  t.watch_line = line;
  t.watch_line2 = line2;
  t.state = RunState::kBlocked;
  t.resume_point = h;
  const std::uint64_t bit = 1ULL << t.id;
  runnable_mask_ &= ~bit;
  blocked_mask_ |= bit;
  watch(line, t.id);
  if (line2 != kInvalidLine) watch(line2, t.id);
  if (choice_ != nullptr) {
    // Blocking on a line is a read-dependence on publishes to it.
    choice_->note_line(line, false);
    if (line2 != kInvalidLine) choice_->note_line(line2, false);
  }
}

void Executor::block_current(std::coroutine_handle<> h) {
  ThreadState& t = threads_[current_];
  t.watch_line = kInvalidLine;
  t.watch_line2 = kInvalidLine;
  t.state = RunState::kBlocked;
  t.resume_point = h;
  const std::uint64_t bit = 1ULL << t.id;
  runnable_mask_ &= ~bit;
  blocked_mask_ |= bit;
}

void Executor::unblock(ThreadState& t) {
  unwatch(t.watch_line, t.id);
  unwatch(t.watch_line2, t.id);
  t.watch_line = kInvalidLine;
  t.watch_line2 = kInvalidLine;
  t.state = RunState::kRunnable;
  const std::uint64_t bit = 1ULL << t.id;
  blocked_mask_ &= ~bit;
  runnable_mask_ |= bit;
}

void Executor::wake_watchers(std::uint32_t line, Cycles publisher_clock,
                             const CostModel& costs) {
  if (line >= line_watchers_.size()) return;
  // Ascending thread id, the historical wake order.
  std::uint64_t waiters = line_watchers_[line];
  while (waiters != 0) {
    const auto tid = static_cast<std::uint32_t>(std::countr_zero(waiters));
    waiters &= waiters - 1;
    ThreadState& t = threads_[tid];
    unblock(t);
    t.clock = std::max(t.clock, publisher_clock + costs.wake_latency) + costs.wake_reload;
    if (choice_ != nullptr) choice_->note_interaction(tid);
  }
}

void Executor::wake_blocked(std::uint32_t tid, Cycles min_clock) {
  ThreadState& t = threads_[tid];
  if (t.state != RunState::kBlocked) return;
  unblock(t);
  t.clock = std::max(t.clock, min_clock);
  if (choice_ != nullptr) choice_->note_interaction(tid);
}

}  // namespace sihle::sim
