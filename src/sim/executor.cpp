#include "sim/executor.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sihle::sim {

namespace {
// The root wrapper owns the thread body task in its frame; destroying the
// root handle unwinds the whole suspended call chain.
RootTask make_root(Task<void> body) { co_await std::move(body); }
}  // namespace

Executor::~Executor() {
  for (auto& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

std::uint32_t Executor::spawn(Task<void> root) {
  if (threads_.size() >= kMaxThreads) {
    throw std::runtime_error("Executor: too many logical threads");
  }
  const auto id = static_cast<std::uint32_t>(threads_.size());
  ThreadState ts;
  ts.id = id;
  std::uint64_t sm = seed_ + 0x100 + id;
  ts.rng = Rng(splitmix64(sm));
  threads_.push_back(ts);

  RootTask wrapper = make_root(std::move(root));
  wrapper.handle.promise().ts = nullptr;  // fixed up below (vector may move)
  roots_.push_back(wrapper);
  return id;
}

std::uint32_t Executor::pick_next() {
  std::uint32_t best = kInvalidLine;
  Cycles best_clock = std::numeric_limits<Cycles>::max();
  std::uint32_t ties = 0;
  for (const auto& t : threads_) {
    if (t.state != RunState::kRunnable) continue;
    if (t.clock < best_clock) {
      best = t.id;
      best_clock = t.clock;
      ties = 1;
    } else if (random_tie_break_ && t.clock == best_clock) {
      // Reservoir-sample among equal-clock threads: still deterministic for
      // a given seed, but explores different interleavings than strict
      // lowest-id order (schedule fuzzing for the concurrency tests).
      ++ties;
      if (sched_rng_.below(ties) == 0) best = t.id;
    }
  }
  return best;
}

void Executor::run() {
  // Fix up promise back-pointers and initial resume points now that the
  // thread vector is stable.
  for (std::uint32_t i = 0; i < threads_.size(); ++i) {
    roots_[i].handle.promise().ts = &threads_[i];
    if (!threads_[i].resume_point) threads_[i].resume_point = roots_[i].handle;
  }

  while (true) {
    const std::uint32_t next = pick_next();
    if (next == kInvalidLine) {
      const bool all_done = std::all_of(
          threads_.begin(), threads_.end(),
          [](const ThreadState& t) { return t.state == RunState::kFinished; });
      if (all_done) return;
      throw std::runtime_error("Executor: deadlock — all live threads blocked");
    }
    current_ = next;
    ThreadState& t = threads_[next];
    t.events++;
    t.resume_point.resume();
    if (t.failure) {
      t.state = RunState::kFinished;
      std::rethrow_exception(std::exchange(t.failure, nullptr));
    }
    if (roots_[next].handle.done()) t.state = RunState::kFinished;
  }
}

Cycles Executor::max_clock() const {
  Cycles m = 0;
  for (const auto& t : threads_) m = std::max(m, t.clock);
  return m;
}

void Executor::block_current_on_line(std::uint32_t line, std::coroutine_handle<> h,
                                     std::uint32_t line2) {
  ThreadState& t = threads_[current_];
  t.watch_line = line;
  t.watch_line2 = line2;
  t.state = RunState::kBlocked;
  t.resume_point = h;
}

void Executor::wake_watchers(std::uint32_t line, Cycles publisher_clock,
                             const CostModel& costs) {
  for (auto& t : threads_) {
    if (t.state == RunState::kBlocked &&
        (t.watch_line == line || t.watch_line2 == line)) {
      t.watch_line = kInvalidLine;
      t.watch_line2 = kInvalidLine;
      t.state = RunState::kRunnable;
      t.clock = std::max(t.clock, publisher_clock + costs.wake_latency) + costs.wake_reload;
    }
  }
}

}  // namespace sihle::sim
