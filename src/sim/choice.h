// Choice points: reified nondeterminism for the bounded model checker.
//
// A normal simulation run resolves every scheduling decision internally
// (min-clock thread pick, seeded RNG for spurious aborts and tie-breaks).
// When a ChoicePoint hook is installed, those decisions are delegated to it
// instead, which lets a DFS driver (src/mc) enumerate *all* resolutions and
// replay any recorded sequence deterministically.
//
// The hook is null by default and every call site guards on that, so the
// instrumentation is a single predictable branch on non-mc runs: the golden
// RNG draw order (tests/rng_draworder_test.cpp) and the committed benchmark
// baselines are unaffected.
#pragma once

#include <cstdint>

namespace sihle::sim {

// The kinds of decision a run can expose.  Each corresponds to one method
// below; a recorded choice trace tags every entry with its kind so replays
// can assert they stay in sync.
enum class ChoiceKind : std::uint8_t {
  kThread,       // which runnable thread performs the next event
  kSpurious,     // inject a spurious abort at this transactional access?
  kConflictTie,  // conflict arbitration: does the requestor win?
};

class ChoicePoint {
 public:
  virtual ~ChoicePoint() = default;

  // Scheduling decision: pick the next thread from `runnable_mask`
  // (bit tid set iff thread tid is runnable; never zero).
  virtual std::uint32_t pick_thread(std::uint64_t runnable_mask) = 0;

  // Should this transactional access abort spuriously?  Replaces the
  // probabilistic HtmConfig::spurious_abort_per_access draw under mc.
  virtual bool inject_spurious(std::uint32_t tid) = 0;

  // Conflict arbitration between two live transactions: `requestor` is the
  // accessing thread, `victim` the transaction it conflicts with on `line`.
  // Return true to keep the hardware's requestor-wins resolution (victim is
  // doomed), false to doom the requestor instead.
  virtual bool resolve_conflict(std::uint32_t requestor, std::uint32_t victim,
                                std::uint32_t line) = 0;

  // --- Dependence feed (no decisions) --------------------------------------
  // The simulator reports each step's footprint through these so the driver
  // can compute independence for partial-order reduction.  Default no-ops.

  // The current step touched cache line `line` (is_write: store/publish).
  virtual void note_line(std::uint32_t /*line*/, bool /*is_write*/) {}
  // The current step affected another thread's state (doomed or woke it).
  virtual void note_interaction(std::uint32_t /*tid*/) {}
};

inline const char* to_string(ChoiceKind k) {
  switch (k) {
    case ChoiceKind::kThread: return "thread";
    case ChoiceKind::kSpurious: return "spurious";
    case ChoiceKind::kConflictTie: return "conflict-tie";
  }
  return "?";
}

}  // namespace sihle::sim
