// Minimal lazy coroutine task used for all simulated-thread code.
//
// A sihle::sim::Task<T> is a lazily-started coroutine that transfers control
// back to its awaiter on completion (symmetric transfer) and propagates
// exceptions to the awaiting frame.  Every piece of workload code that may
// touch simulated shared memory is written as a Task so that the executor
// can suspend a logical thread at each memory access.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_pool.h"

namespace sihle::sim {

template <typename T>
class Task;

namespace detail {

// Shared behaviour of Task promises: continuation chaining and exception
// capture.  The awaiting coroutine's handle is stored as `continuation` and
// resumed (via symmetric transfer) when the task finishes.
//
// Frame allocation routes through the thread's active FramePool (see
// sim/frame_pool.h): with a pool installed — runtime::Machine installs its
// own around spawn()/run() — frames are recycled instead of malloc'd per
// coroutine call.  The frame's header records its origin, so destruction
// order against the pool is unconstrained.
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};
  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

// Lazily started coroutine task.  `co_await task` starts it; completion
// resumes the awaiter.  Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
      handle.promise().continuation = awaiting;
      return handle;  // start the child task
    }
    T await_resume() {
      if (handle.promise().error) std::rethrow_exception(handle.promise().error);
      if constexpr (!std::is_void_v<T>) return std::move(handle.promise().value);
    }
  };

  Awaiter operator co_await() const& { return Awaiter{handle_}; }
  Awaiter operator co_await() && { return Awaiter{handle_}; }

  // For root tasks only: start the coroutine with no continuation.  The
  // executor uses RootTask below instead; exposed for tests.
  void start_detached() { handle_.resume(); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}
}  // namespace detail

}  // namespace sihle::sim
