// Discrete-event executor for logical threads.
//
// All logical threads run on a single OS thread.  The executor repeatedly
// resumes the runnable thread with the smallest virtual clock, so the
// interleaving of simulated shared-memory accesses is totally ordered by
// virtual time and fully deterministic for a given seed.  This models N
// hardware threads executing in parallel: each thread's clock advances by
// the cost of the events it performs, and the run's makespan is the maximum
// clock over all threads.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <vector>

#include "sim/choice.h"
#include "sim/cost_model.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace sihle::sim {

inline constexpr std::uint32_t kMaxThreads = 64;
inline constexpr std::uint32_t kInvalidLine = std::numeric_limits<std::uint32_t>::max();
// Thread-id sentinel, distinct from the line sentinel above even though the
// two share a representation: pick_next() and friends deal in thread ids,
// never lines.
inline constexpr std::uint32_t kInvalidThread = std::numeric_limits<std::uint32_t>::max();

enum class RunState : std::uint8_t { kRunnable, kBlocked, kFinished };

// Why run_until() stopped (domain-parallel simulation, runtime/domains.h).
enum class RunOutcome : std::uint8_t {
  kFinished,    // every logical thread finished
  kHorizon,     // all runnable threads have reached the virtual-time horizon
  kAllBlocked,  // live threads exist but none is runnable (possible deadlock;
                // under DomainSet a pending cross-domain op resolves it)
};

// Per-logical-thread simulation state.  Higher layers (memory, HTM) keep
// their own per-thread state indexed by `id`.
struct ThreadState {
  std::uint32_t id = 0;
  Cycles clock = 0;
  Rng rng;
  RunState state = RunState::kRunnable;
  std::coroutine_handle<> resume_point;
  // A blocked thread wakes when either watched line is published to.
  std::uint32_t watch_line = kInvalidLine;
  std::uint32_t watch_line2 = kInvalidLine;
  std::exception_ptr failure;
  std::uint64_t events = 0;  // number of simulation events performed
};

// Root coroutine wrapper: drives a Task<void> and parks at final_suspend so
// the executor can detect completion via handle.done().
struct RootTask {
  struct promise_type {
    ThreadState* ts = nullptr;
    static void* operator new(std::size_t n) { return FramePool::allocate(n); }
    static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
    static void operator delete(void* p, std::size_t) noexcept {
      FramePool::deallocate(p);
    }
    RootTask get_return_object() {
      return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept {
      if (ts) ts->failure = std::current_exception();
    }
  };
  std::coroutine_handle<promise_type> handle;
};

class Executor {
 public:
  explicit Executor(std::uint64_t seed, bool random_tie_break = false)
      : seed_(seed), random_tie_break_(random_tie_break) {
    std::uint64_t sm = seed ^ 0x5EED5EEDULL;
    sched_rng_ = Rng(splitmix64(sm));
  }
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Registers a logical thread whose body is `root`.  Must be called before
  // run().  Returns the thread id (0-based, dense).
  std::uint32_t spawn(Task<void> root);

  // Runs until every logical thread finishes.  Throws std::runtime_error on
  // deadlock (all live threads blocked) and rethrows any exception that
  // escapes a thread body.
  void run();

  // Bounded run: resumes min-clock threads until every runnable thread's
  // clock is >= `horizon`, every thread finished, or no thread is runnable.
  // run() is run_until(no horizon) plus the deadlock throw, so the
  // sequential scheduling order — and its RNG draw sequence — is untouched
  // (tests/rng_draworder_test.cpp).  The epoch loop of the domain-parallel
  // simulation (runtime/domains.h) calls this once per epoch; kAllBlocked is
  // not a verdict there, because a thread parked on a cross-domain handoff
  // is woken at the next barrier.
  RunOutcome run_until(Cycles horizon);
  static constexpr Cycles kNoHorizon = std::numeric_limits<Cycles>::max();

  std::uint32_t thread_count() const { return static_cast<std::uint32_t>(threads_.size()); }
  ThreadState& thread(std::uint32_t id) { return threads_[id]; }
  const ThreadState& thread(std::uint32_t id) const { return threads_[id]; }

  // The thread currently being resumed; valid only from within awaitables.
  ThreadState& current() { return threads_[current_]; }

  // Makespan of the simulated run so far.
  Cycles max_clock() const;

  // --- Called from awaitables ---------------------------------------------

  // Record the innermost suspended frame of the current thread.
  void suspend_current(std::coroutine_handle<> h) { threads_[current_].resume_point = h; }

  // Suspend the current thread until `line` (or `line2`, if given) is
  // published to.
  void block_current_on_line(std::uint32_t line, std::coroutine_handle<> h,
                             std::uint32_t line2 = kInvalidLine);

  // Suspend the current thread with no watched line: only an explicit
  // wake_blocked() revives it.  Used for cross-domain handoffs, whose wake
  // comes from the epoch barrier rather than from a published line.
  void block_current(std::coroutine_handle<> h);

  // Wake every thread blocked on `line`; the waiter's clock jumps to the
  // publisher's clock plus coherence latency.  O(#woken): watchers are kept
  // in a per-line wake list (bitmask over thread ids), not found by
  // scanning all threads.
  void wake_watchers(std::uint32_t line, Cycles publisher_clock, const CostModel& costs);

  // Make a blocked thread runnable again without a publish (asynchronous
  // abort delivery: the HTM doom listener wakes blocked victims).  Advances
  // the thread's clock to at least `min_clock`.  No-op unless blocked.
  void wake_blocked(std::uint32_t tid, Cycles min_clock);

  std::uint64_t seed() const { return seed_; }

  // --- Model-checking hook --------------------------------------------------

  // Installs (or clears, with nullptr) the choice-point hook.  While set, the
  // scheduling decision in pick_next() is delegated to the hook instead of
  // the min-clock/reservoir policy.  Normal runs never set this.
  void set_choice_point(ChoicePoint* cp) { choice_ = cp; }
  ChoicePoint* choice_point() const { return choice_; }

  // Dependence feed for the hook; no-op when no hook is installed.  Exposed
  // so awaitables outside src/sim (e.g. the line-version peek in
  // runtime/ctx.h) can report reads that bypass the HTM layer.
  void note_choice_line(std::uint32_t line, bool is_write) {
    if (choice_ != nullptr) choice_->note_line(line, is_write);
  }

 private:
  std::uint32_t pick_next();  // kInvalidThread if none runnable

  // Registers/clears tid in a line's wake list.
  void watch(std::uint32_t line, std::uint32_t tid);
  void unwatch(std::uint32_t line, std::uint32_t tid);
  // Clears watch state and moves a blocked thread to the runnable set.
  void unblock(ThreadState& t);
  void finish(ThreadState& t);

  std::uint64_t seed_;
  bool random_tie_break_;
  ChoicePoint* choice_ = nullptr;
  Rng sched_rng_;
  std::vector<ThreadState> threads_;
  std::vector<RootTask> roots_;
  std::uint32_t current_ = 0;
  // Maintained scheduling sets (invariant: bit tid set exactly when
  // threads_[tid].state matches).  kMaxThreads == 64 makes a word-sized
  // mask an exact, ordered representation: iteration via countr_zero visits
  // threads in ascending id, matching the historical full-scan order, so
  // the reservoir tie-break consumes RNG draws in the identical sequence.
  std::uint64_t runnable_mask_ = 0;
  std::uint64_t blocked_mask_ = 0;
  // Per-line wake lists: line_watchers_[line] is the set of blocked threads
  // watching that line (primary or secondary watch slot).  Grown on demand;
  // entries are cleared as threads are woken.
  std::vector<std::uint64_t> line_watchers_;
};

}  // namespace sihle::sim
