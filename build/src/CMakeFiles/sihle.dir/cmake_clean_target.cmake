file(REMOVE_RECURSE
  "libsihle.a"
)
