
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/hashtable.cpp" "src/CMakeFiles/sihle.dir/ds/hashtable.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/ds/hashtable.cpp.o.d"
  "/root/repo/src/ds/linkedlist.cpp" "src/CMakeFiles/sihle.dir/ds/linkedlist.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/ds/linkedlist.cpp.o.d"
  "/root/repo/src/ds/rbtree.cpp" "src/CMakeFiles/sihle.dir/ds/rbtree.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/ds/rbtree.cpp.o.d"
  "/root/repo/src/ds/skiplist.cpp" "src/CMakeFiles/sihle.dir/ds/skiplist.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/ds/skiplist.cpp.o.d"
  "/root/repo/src/harness/rbtree_workload.cpp" "src/CMakeFiles/sihle.dir/harness/rbtree_workload.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/harness/rbtree_workload.cpp.o.d"
  "/root/repo/src/htm/htm.cpp" "src/CMakeFiles/sihle.dir/htm/htm.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/htm/htm.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/CMakeFiles/sihle.dir/runtime/machine.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/runtime/machine.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/sihle.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/sim/executor.cpp.o.d"
  "/root/repo/src/stamp/genome.cpp" "src/CMakeFiles/sihle.dir/stamp/genome.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/genome.cpp.o.d"
  "/root/repo/src/stamp/intruder.cpp" "src/CMakeFiles/sihle.dir/stamp/intruder.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/intruder.cpp.o.d"
  "/root/repo/src/stamp/kmeans.cpp" "src/CMakeFiles/sihle.dir/stamp/kmeans.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/kmeans.cpp.o.d"
  "/root/repo/src/stamp/labyrinth.cpp" "src/CMakeFiles/sihle.dir/stamp/labyrinth.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/labyrinth.cpp.o.d"
  "/root/repo/src/stamp/registry.cpp" "src/CMakeFiles/sihle.dir/stamp/registry.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/registry.cpp.o.d"
  "/root/repo/src/stamp/ssca2.cpp" "src/CMakeFiles/sihle.dir/stamp/ssca2.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/ssca2.cpp.o.d"
  "/root/repo/src/stamp/vacation.cpp" "src/CMakeFiles/sihle.dir/stamp/vacation.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/vacation.cpp.o.d"
  "/root/repo/src/stamp/yada.cpp" "src/CMakeFiles/sihle.dir/stamp/yada.cpp.o" "gcc" "src/CMakeFiles/sihle.dir/stamp/yada.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
