# Empty dependencies file for sihle.
# This may be replaced when dependencies are built.
