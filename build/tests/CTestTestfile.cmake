# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/ds_sets_test[1]_include.cmake")
include("/root/repo/build/tests/elision_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/hashtable_test[1]_include.cmake")
include("/root/repo/build/tests/hle_prefix_htm_test[1]_include.cmake")
include("/root/repo/build/tests/hle_prefix_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/locks_test[1]_include.cmake")
include("/root/repo/build/tests/multilock_test[1]_include.cmake")
include("/root/repo/build/tests/opacity_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/rbtree_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/scm_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/slr_test[1]_include.cmake")
include("/root/repo/build/tests/stamp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
