file(REMOVE_RECURSE
  "CMakeFiles/hle_prefix_test.dir/hle_prefix_test.cpp.o"
  "CMakeFiles/hle_prefix_test.dir/hle_prefix_test.cpp.o.d"
  "hle_prefix_test"
  "hle_prefix_test.pdb"
  "hle_prefix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hle_prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
