# Empty compiler generated dependencies file for hle_prefix_test.
# This may be replaced when dependencies are built.
