# Empty dependencies file for hle_prefix_htm_test.
# This may be replaced when dependencies are built.
