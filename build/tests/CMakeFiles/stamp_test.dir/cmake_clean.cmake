file(REMOVE_RECURSE
  "CMakeFiles/stamp_test.dir/stamp_test.cpp.o"
  "CMakeFiles/stamp_test.dir/stamp_test.cpp.o.d"
  "stamp_test"
  "stamp_test.pdb"
  "stamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
