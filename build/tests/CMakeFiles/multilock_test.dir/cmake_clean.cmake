file(REMOVE_RECURSE
  "CMakeFiles/multilock_test.dir/multilock_test.cpp.o"
  "CMakeFiles/multilock_test.dir/multilock_test.cpp.o.d"
  "multilock_test"
  "multilock_test.pdb"
  "multilock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
