# Empty dependencies file for multilock_test.
# This may be replaced when dependencies are built.
