# Empty compiler generated dependencies file for elision_smoke_test.
# This may be replaced when dependencies are built.
