file(REMOVE_RECURSE
  "CMakeFiles/elision_smoke_test.dir/elision_smoke_test.cpp.o"
  "CMakeFiles/elision_smoke_test.dir/elision_smoke_test.cpp.o.d"
  "elision_smoke_test"
  "elision_smoke_test.pdb"
  "elision_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elision_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
