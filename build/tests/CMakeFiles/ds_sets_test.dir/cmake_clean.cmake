file(REMOVE_RECURSE
  "CMakeFiles/ds_sets_test.dir/ds_sets_test.cpp.o"
  "CMakeFiles/ds_sets_test.dir/ds_sets_test.cpp.o.d"
  "ds_sets_test"
  "ds_sets_test.pdb"
  "ds_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
