# Empty compiler generated dependencies file for slr_test.
# This may be replaced when dependencies are built.
