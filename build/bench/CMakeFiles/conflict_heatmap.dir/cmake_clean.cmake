file(REMOVE_RECURSE
  "CMakeFiles/conflict_heatmap.dir/conflict_heatmap.cpp.o"
  "CMakeFiles/conflict_heatmap.dir/conflict_heatmap.cpp.o.d"
  "conflict_heatmap"
  "conflict_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
