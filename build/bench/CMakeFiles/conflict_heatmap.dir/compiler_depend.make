# Empty compiler generated dependencies file for conflict_heatmap.
# This may be replaced when dependencies are built.
