file(REMOVE_RECURSE
  "CMakeFiles/fig11_stamp.dir/fig11_stamp.cpp.o"
  "CMakeFiles/fig11_stamp.dir/fig11_stamp.cpp.o.d"
  "fig11_stamp"
  "fig11_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
