# Empty compiler generated dependencies file for fig11_stamp.
# This may be replaced when dependencies are built.
