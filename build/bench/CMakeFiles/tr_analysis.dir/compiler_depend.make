# Empty compiler generated dependencies file for tr_analysis.
# This may be replaced when dependencies are built.
