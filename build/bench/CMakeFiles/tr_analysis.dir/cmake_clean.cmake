file(REMOVE_RECURSE
  "CMakeFiles/tr_analysis.dir/tr_analysis.cpp.o"
  "CMakeFiles/tr_analysis.dir/tr_analysis.cpp.o.d"
  "tr_analysis"
  "tr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
