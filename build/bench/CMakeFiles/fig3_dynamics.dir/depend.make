# Empty dependencies file for fig3_dynamics.
# This may be replaced when dependencies are built.
