file(REMOVE_RECURSE
  "CMakeFiles/fig3_dynamics.dir/fig3_dynamics.cpp.o"
  "CMakeFiles/fig3_dynamics.dir/fig3_dynamics.cpp.o.d"
  "fig3_dynamics"
  "fig3_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
