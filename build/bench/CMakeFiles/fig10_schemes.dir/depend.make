# Empty dependencies file for fig10_schemes.
# This may be replaced when dependencies are built.
