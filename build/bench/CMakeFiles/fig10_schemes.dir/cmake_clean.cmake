file(REMOVE_RECURSE
  "CMakeFiles/fig10_schemes.dir/fig10_schemes.cpp.o"
  "CMakeFiles/fig10_schemes.dir/fig10_schemes.cpp.o.d"
  "fig10_schemes"
  "fig10_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
