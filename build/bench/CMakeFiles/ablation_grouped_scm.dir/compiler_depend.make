# Empty compiler generated dependencies file for ablation_grouped_scm.
# This may be replaced when dependencies are built.
