file(REMOVE_RECURSE
  "CMakeFiles/ablation_grouped_scm.dir/ablation_grouped_scm.cpp.o"
  "CMakeFiles/ablation_grouped_scm.dir/ablation_grouped_scm.cpp.o.d"
  "ablation_grouped_scm"
  "ablation_grouped_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grouped_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
