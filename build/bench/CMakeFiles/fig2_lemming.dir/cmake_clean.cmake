file(REMOVE_RECURSE
  "CMakeFiles/fig2_lemming.dir/fig2_lemming.cpp.o"
  "CMakeFiles/fig2_lemming.dir/fig2_lemming.cpp.o.d"
  "fig2_lemming"
  "fig2_lemming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lemming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
