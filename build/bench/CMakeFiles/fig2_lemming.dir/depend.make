# Empty dependencies file for fig2_lemming.
# This may be replaced when dependencies are built.
