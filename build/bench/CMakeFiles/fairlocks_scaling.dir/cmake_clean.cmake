file(REMOVE_RECURSE
  "CMakeFiles/fairlocks_scaling.dir/fairlocks_scaling.cpp.o"
  "CMakeFiles/fairlocks_scaling.dir/fairlocks_scaling.cpp.o.d"
  "fairlocks_scaling"
  "fairlocks_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairlocks_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
