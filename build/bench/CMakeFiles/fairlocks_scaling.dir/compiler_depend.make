# Empty compiler generated dependencies file for fairlocks_scaling.
# This may be replaced when dependencies are built.
