# Empty dependencies file for ablation_spurious.
# This may be replaced when dependencies are built.
