file(REMOVE_RECURSE
  "CMakeFiles/ablation_spurious.dir/ablation_spurious.cpp.o"
  "CMakeFiles/ablation_spurious.dir/ablation_spurious.cpp.o.d"
  "ablation_spurious"
  "ablation_spurious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spurious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
