# Empty compiler generated dependencies file for ds_hashtable.
# This may be replaced when dependencies are built.
