file(REMOVE_RECURSE
  "CMakeFiles/ds_hashtable.dir/ds_hashtable.cpp.o"
  "CMakeFiles/ds_hashtable.dir/ds_hashtable.cpp.o.d"
  "ds_hashtable"
  "ds_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
