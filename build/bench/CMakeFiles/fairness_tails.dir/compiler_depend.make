# Empty compiler generated dependencies file for fairness_tails.
# This may be replaced when dependencies are built.
