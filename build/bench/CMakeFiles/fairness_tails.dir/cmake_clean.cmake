file(REMOVE_RECURSE
  "CMakeFiles/fairness_tails.dir/fairness_tails.cpp.o"
  "CMakeFiles/fairness_tails.dir/fairness_tails.cpp.o.d"
  "fairness_tails"
  "fairness_tails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_tails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
