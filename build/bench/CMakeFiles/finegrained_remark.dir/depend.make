# Empty dependencies file for finegrained_remark.
# This may be replaced when dependencies are built.
