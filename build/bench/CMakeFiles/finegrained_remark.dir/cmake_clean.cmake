file(REMOVE_RECURSE
  "CMakeFiles/finegrained_remark.dir/finegrained_remark.cpp.o"
  "CMakeFiles/finegrained_remark.dir/finegrained_remark.cpp.o.d"
  "finegrained_remark"
  "finegrained_remark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finegrained_remark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
