file(REMOVE_RECURSE
  "CMakeFiles/spectrum_txlen.dir/spectrum_txlen.cpp.o"
  "CMakeFiles/spectrum_txlen.dir/spectrum_txlen.cpp.o.d"
  "spectrum_txlen"
  "spectrum_txlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_txlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
