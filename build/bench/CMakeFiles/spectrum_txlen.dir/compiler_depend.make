# Empty compiler generated dependencies file for spectrum_txlen.
# This may be replaced when dependencies are built.
