file(REMOVE_RECURSE
  "CMakeFiles/lemming_demo.dir/lemming_demo.cpp.o"
  "CMakeFiles/lemming_demo.dir/lemming_demo.cpp.o.d"
  "lemming_demo"
  "lemming_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemming_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
