# Empty compiler generated dependencies file for lemming_demo.
# This may be replaced when dependencies are built.
