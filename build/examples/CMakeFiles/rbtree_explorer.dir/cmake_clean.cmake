file(REMOVE_RECURSE
  "CMakeFiles/rbtree_explorer.dir/rbtree_explorer.cpp.o"
  "CMakeFiles/rbtree_explorer.dir/rbtree_explorer.cpp.o.d"
  "rbtree_explorer"
  "rbtree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbtree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
