# Empty dependencies file for rbtree_explorer.
# This may be replaced when dependencies are built.
