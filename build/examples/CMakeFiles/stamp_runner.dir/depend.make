# Empty dependencies file for stamp_runner.
# This may be replaced when dependencies are built.
