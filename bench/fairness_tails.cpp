// Fairness / starvation ablation (§6 "Preventing starvation", §8: SCM "is
// the only scheme that enables HLE-based fair locks, with starvation
// freedom and progress guarantees").  We measure per-operation latency
// tails on a contended red-black tree:
//
//   * standard TTAS — unfair: the tail stretches far beyond the median;
//   * standard MCS — FIFO-fair: tight tail;
//   * HLE-MCS — fair but serialized (the lemming effect);
//   * HLE-SCM-MCS — elided AND fair: speculative throughput with a bounded
//     tail inherited from the fair auxiliary lock;
//   * opt-SLR-MCS — elided, but conflictors retry optimistically, so the
//     tail stretches again.
//
// Flags: --threads=N --size=N --updates=PCT --duration-ms=F --seed=N
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const auto size = static_cast<std::size_t>(args.get_int("size", 64));
  const int updates = static_cast<int>(args.get_int("updates", 100));
  const double duration_ms = args.get_double("duration-ms", 1.5);

  std::printf(
      "Operation-latency tails under contention (%zu-node tree, %d threads, "
      "%d%% updates); latencies in virtual cycles from the shared log-linear "
      "histogram (stats/latency.h, <=1/32 relative bucket width)\n\n",
      size, threads, updates);

  struct Row {
    const char* name;
    elision::Scheme scheme;
    locks::LockKind lock;
  };
  const Row rows[] = {
      {"standard TTAS", elision::Scheme::kStandard, locks::LockKind::kTtas},
      {"standard MCS", elision::Scheme::kStandard, locks::LockKind::kMcs},
      {"HLE MCS", elision::Scheme::kHle, locks::LockKind::kMcs},
      {"HLE-SCM MCS", elision::Scheme::kHleScm, locks::LockKind::kMcs},
      {"opt SLR MCS", elision::Scheme::kOptSlr, locks::LockKind::kMcs},
  };

  Table table({"configuration", "throughput", "p50", "p99", "p99.9",
               "tail ratio (p99.9/p50)"});
  for (const Row& row : rows) {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.tree_size = size;
    cfg.update_pct = updates;
    cfg.scheme = row.scheme;
    cfg.lock = row.lock;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
    cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
    const auto r = harness::run_rbtree_workload(cfg);
    const double p50 = static_cast<double>(r.latency.percentile(0.50));
    const double p999 = static_cast<double>(r.latency.percentile(0.999));
    table.row({row.name, Table::num(r.ops_per_mcycle, 0),
               Table::num(static_cast<double>(r.latency.percentile(0.50)), 0),
               Table::num(static_cast<double>(r.latency.percentile(0.99)), 0),
               Table::num(p999, 0), Table::num(p999 / p50, 1)});
  }
  table.print();
  std::printf(
      "\nExpected: the fair queue keeps MCS's tail ratio small where TTAS's "
      "explodes; HLE-SCM preserves that bounded tail while restoring "
      "speculative throughput; optimistic SLR trades the tail back for "
      "throughput.\n");
  return 0;
}
