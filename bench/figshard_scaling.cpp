// Domain-parallel scaling of the simulator itself: the sharded multi-lock
// workload (harness/shard_workload.h) run through runtime::DomainSet, swept
// along three axes:
//
//   Part A (shard sweep, dt=1): shards 1..16 at mild skew — virtual-time
//     throughput (ops/Mcycle) grows with shard count because shards overlap
//     in *simulated* time regardless of host threads.
//   Part B (skew sweep, 16 shards): zipf_s 0..1.2 — skew concentrates the
//     op budget on hot shards, stretching the makespan; the load-imbalance
//     signal domain partitioning is sensitive to.
//   Part C (host-thread sweep, 16 shards, low skew): domain_threads 1/2/8 —
//     the *host* wall-clock rate (events/sec) is the parallel-simulation
//     payoff, and the fingerprint column demonstrates that results are
//     byte-identical across host-thread counts (the determinism contract;
//     ctest label `domains` asserts it exactly).
//
// The committed baseline lives at results/BENCH_sim_parallel.json and is
// gated in CI's bench-baselines job on ops_per_mcycle — a simulated-time
// metric, byte-reproducible on any host.  Wall-clock metrics
// (events_per_sec, wall_seconds) are exported for visibility but not gated:
// they depend on the runner's core count (`host_threads`/`hw_concurrency`
// metadata in the results doc says what the baseline host had).
//
// sihle-lint: disable-file=R005 — wall-clock readings here are reported
// metrics only; no simulation decision consumes them.
//
// Flags: --total-ops=N (default 16000) --update-pct=P (default 20)
//        --keyspace=N (default 4096) --epoch-cycles=N (default 4096)
//        --jobs=N (default 1: the workload itself owns the host threads)
//        --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
#include <cstdio>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/shard_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::ShardWorkloadConfig;
using harness::ShardWorkloadResult;

namespace {

exp::RunFn shard_run(ShardWorkloadConfig cfg) {
  return [cfg](std::uint64_t seed) {
    ShardWorkloadConfig c = cfg;
    c.seed = seed;
    const ShardWorkloadResult r = harness::run_shard_workload(c);
    const double wall = r.wall_seconds > 0.0 ? r.wall_seconds : 1e-9;
    return exp::MetricList{
        {"ops_per_mcycle", r.ops_per_mcycle},
        {"makespan", static_cast<double>(r.makespan)},
        {"remote_ops", static_cast<double>(r.remote_ops)},
        {"epochs", static_cast<double>(r.epochs)},
        {"events_per_sec", static_cast<double>(r.total_events) / wall},
        {"wall_seconds", r.wall_seconds},
        // Folded to 32 bits so the value is exact in a double: equal bytes
        // across domain_threads cells ⇔ equal fingerprints per replicate.
        {"fingerprint32",
         static_cast<double>(r.fingerprint & 0xFFFFFFFFULL)},
        {"tables_valid", r.tables_valid ? 1.0 : 0.0},
    };
  };
}

void add_cell(exp::ExperimentSpec& spec, exp::AxisList axes,
              const ShardWorkloadConfig& cfg) {
  exp::Cell cell;
  cell.axes = std::move(axes);
  cell.id = exp::axes_id(cell.axes);
  cell.run = shard_run(cfg);
  spec.cells.push_back(std::move(cell));
}

std::string fmt_zipf(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", s);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Args args(argc, argv);
  exp::RegressOptions regress;
  regress.metric = "ops_per_mcycle";
  regress.higher_is_better = true;
  exp::CliOptions cli = exp::parse_cli(args, /*default_replicates=*/3, regress);
  // The workload drives its own host threads (domain_threads axis); nesting
  // an engine fan-out on top would oversubscribe the host and distort the
  // wall-clock columns, so the default here is serial like sim_wallclock.
  if (args.get("jobs", "").empty()) cli.jobs = 1;
  // The Part C wall-clock columns only make sense relative to the host
  // that produced them: record it in the exported document.
  cli.record_host = true;

  ShardWorkloadConfig base;
  base.total_ops =
      static_cast<std::uint64_t>(args.get_int("total-ops", 16000));
  base.update_pct = static_cast<int>(args.get_int("update-pct", 20));
  base.keyspace = static_cast<std::size_t>(args.get_int("keyspace", 4096));
  base.epoch_cycles =
      static_cast<sim::Cycles>(args.get_int("epoch-cycles", 4096));

  exp::ExperimentSpec spec;
  spec.name = "figshard";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;

  const std::size_t shard_axis[] = {1, 2, 4, 8, 16};
  const double zipf_axis[] = {0.0, 0.5, 0.9, 1.2};
  const int dt_axis[] = {1, 2, 8};

  // Part A: shard sweep, one host thread, mild skew.
  for (const std::size_t shards : shard_axis) {
    ShardWorkloadConfig cfg = base;
    cfg.shards = shards;
    cfg.zipf_s = 0.2;
    cfg.domain_threads = 1;
    add_cell(spec,
             {{"part", "shards"}, {"shards", std::to_string(shards)}}, cfg);
  }
  // Part B: skew sweep at 16 shards.
  for (const double s : zipf_axis) {
    ShardWorkloadConfig cfg = base;
    cfg.shards = 16;
    cfg.zipf_s = s;
    cfg.domain_threads = 1;
    add_cell(spec, {{"part", "skew"}, {"zipf", fmt_zipf(s)}}, cfg);
  }
  // Part C: host-thread sweep — 16 shards, low skew (the acceptance cells).
  for (const int dt : dt_axis) {
    ShardWorkloadConfig cfg = base;
    cfg.shards = 16;
    cfg.zipf_s = 0.0;
    cfg.domain_threads = dt;
    add_cell(spec, {{"part", "hostthreads"}, {"dt", std::to_string(dt)}},
             cfg);
  }

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Domain-parallel sharded workload: %llu ops, %d%% updates, keyspace "
      "%zu, epoch %llu cycles (%d replicate(s)/cell)\n\n",
      static_cast<unsigned long long>(base.total_ops), base.update_pct,
      base.keyspace, static_cast<unsigned long long>(base.epoch_cycles),
      spec.replicates);

  std::size_t next = 0;  // cells were appended in table order

  std::printf("Part A: shard sweep (zipf 0.2, 1 host thread)\n");
  harness::Table a({"shards", "ops/Mcycle", "makespan", "remote ops"});
  for (const std::size_t shards : shard_axis) {
    const auto& r = results[next++];
    a.row({std::to_string(shards),
           harness::Table::num(r.metric_mean("ops_per_mcycle")),
           harness::Table::num(r.metric_mean("makespan"), 0),
           harness::Table::num(r.metric_mean("remote_ops"), 0)});
  }
  a.print();

  std::printf("\nPart B: skew sweep (16 shards, 1 host thread)\n");
  harness::Table b({"zipf s", "ops/Mcycle", "makespan", "remote ops"});
  for (const double s : zipf_axis) {
    const auto& r = results[next++];
    b.row({fmt_zipf(s), harness::Table::num(r.metric_mean("ops_per_mcycle")),
           harness::Table::num(r.metric_mean("makespan"), 0),
           harness::Table::num(r.metric_mean("remote_ops"), 0)});
  }
  b.print();

  std::printf(
      "\nPart C: host-thread sweep (16 shards, zipf 0.0) — identical "
      "fingerprint/ops columns across rows is the determinism contract; "
      "events/sec is the wall-clock payoff and scales with *this* host's "
      "cores\n");
  harness::Table c(
      {"host threads", "events/sec", "wall s", "ops/Mcycle", "fingerprint32"});
  for (const int dt : dt_axis) {
    const auto& r = results[next++];
    c.row({std::to_string(dt),
           harness::Table::num(r.metric_mean("events_per_sec"), 0),
           harness::Table::num(r.metric_mean("wall_seconds"), 4),
           harness::Table::num(r.metric_mean("ops_per_mcycle")),
           harness::Table::num(r.metric_mean("fingerprint32"), 0)});
  }
  c.print();

  return exp::finish_cli(spec, results, cli);
}
