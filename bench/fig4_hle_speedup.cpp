// Figure 4 — "HLE speedup of 8 threads with different types of locks" under
// three contention mixes (lookups-only / 20% updates / 100% updates).  Each
// cell is HLE throughput normalized to the same lock's standard
// (non-speculative) version.
//
// Flags: --sizes=... --threads=N --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = harness::paper_sizes();

  struct Mix {
    const char* name;
    int update_pct;
  };
  const Mix mixes[] = {{"No contention (lookups only)", 0},
                       {"Moderate contention (10% ins, 10% del, 80% lookups)", 20},
                       {"Extensive contention (50% ins, 50% del)", 100}};

  std::printf("Figure 4: HLE speedup over the standard version of each lock "
              "(%d threads)\n\n", threads);

  for (const Mix& mix : mixes) {
    Table table({"size", "TTAS", "MCS"});
    for (std::size_t size : sizes) {
      std::vector<std::string> row{harness::size_label(size)};
      for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
        WorkloadConfig cfg;
        cfg.threads = threads;
        cfg.tree_size = size;
        cfg.update_pct = mix.update_pct;
        cfg.lock = lock;
        cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
        double hle = 0.0;
        double base = 0.0;
        for (int s = 0; s < seeds; ++s) {
          cfg.seed = 1 + s;
          cfg.scheme = elision::Scheme::kHle;
          hle += harness::run_rbtree_workload(cfg).ops_per_mcycle;
          cfg.scheme = elision::Scheme::kStandard;
          base += harness::run_rbtree_workload(cfg).ops_per_mcycle;
        }
        row.push_back(Table::num(hle / base));
      }
      table.row(std::move(row));
    }
    std::printf("%s:\n", mix.name);
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: MCS gains nothing from HLE at any size or mix (~1.0).  "
      "TTAS gains grow with tree size; under no contention the gain is "
      "large at every size, under heavier update mixes the small-tree gain "
      "shrinks toward ~1.\n");
  return 0;
}
