// Extension ablation — grouped conflict management (§6 Remark / §8 future
// work).  Workload: G independent "hot" counter pairs behind ONE global
// lock; each thread hammers its own pair, so conflicts only ever occur
// within a pair.  Classic SCM funnels every aborted thread through a single
// auxiliary lock, serializing across unrelated conflict groups; grouped SCM
// hashes the abort's conflict line to one of G auxiliary locks and keeps
// the groups independent.
//
// Flags: --threads=N --groups=G --ops=N --seeds=N
#include <cstdio>
#include <memory>
#include <vector>

#include "elision/scm_grouped.h"
#include "harness/cli.h"
#include "harness/table.h"
#include "runtime/ctx.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

namespace {

struct HotPair {
  LineHandle la, lb;
  mem::Shared<std::uint64_t> a, b;
  explicit HotPair(Machine& m) : la(m), lb(m), a(la.line(), 0), b(lb.line(), 0) {}
};

// Mostly-read op over the pair; mutates with the given probability, so
// conflicts arrive in sporadic bursts rather than continuously.
sim::Task<void> pair_op(Ctx& c, HotPair& p, int write_pct) {
  const std::uint64_t va = co_await c.load(p.a);
  co_await c.work(150);
  const std::uint64_t vb = co_await c.load(p.b);
  (void)vb;
  if (static_cast<int>(c.rng().below(100)) < write_pct) {
    co_await c.store(p.a, va + 1);
    co_await c.store(p.b, vb + 1);
  }
}

enum class Mode { kScm, kGroupedScm };

sim::Cycles run(Mode mode, int threads, int groups, int ops, int write_pct,
                std::uint64_t seed, stats::OpStats* out) {
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.htm.spurious_abort_per_access = 1e-4;
  Machine m(cfg);
  locks::MCSLock main(m);
  locks::MCSLock single_aux(m);
  elision::GroupedAux grouped_aux(m, groups);
  std::vector<std::unique_ptr<HotPair>> pairs;
  for (int g = 0; g < groups; ++g) pairs.push_back(std::make_unique<HotPair>(m));

  std::vector<stats::OpStats> st(threads);
  for (int t = 0; t < threads; ++t) {
    HotPair& mine = *pairs[t % groups];
    m.spawn([&, t](Ctx& c) -> sim::Task<void> {
      return [](Ctx& cc, Mode md, locks::MCSLock& mn, locks::MCSLock& sa,
                elision::GroupedAux& ga, HotPair& p, int n, int wp,
                stats::OpStats& s) -> sim::Task<void> {
        for (int i = 0; i < n; ++i) {
          if (md == Mode::kScm) {
            co_await elision::run_scm(
                cc, mn, sa, [&p, wp](Ctx& c2) { return pair_op(c2, p, wp); }, s,
                elision::ScmFlavor::kHle);
          } else {
            co_await elision::run_scm_grouped(
                cc, mn, ga, [&p, wp](Ctx& c2) { return pair_op(c2, p, wp); }, s,
                elision::ScmFlavor::kHle);
          }
        }
      }(c, mode, main, single_aux, grouped_aux, mine, ops, write_pct, st[t]);
    });
  }
  m.run();
  for (const auto& s : st) *out += s;
  return m.exec().max_clock();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int ops = static_cast<int>(args.get_int("ops", 1200));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const int write_pct = static_cast<int>(args.get_int("write-pct", 30));

  std::printf(
      "Grouped SCM ablation (paper's future-work extension): %d threads, "
      "disjoint hot pairs, one global MCS lock\n\n",
      threads);

  Table table({"conflict groups", "SCM time", "grouped-SCM time", "speedup",
               "SCM aux-entries", "grouped aux-entries"});
  for (int groups : {1, 2, 4}) {
    double scm_time = 0.0;
    double grp_time = 0.0;
    stats::OpStats scm_stats;
    stats::OpStats grp_stats;
    for (int s = 0; s < seeds; ++s) {
      scm_time += static_cast<double>(
          run(Mode::kScm, threads, groups, ops, write_pct, 1 + s, &scm_stats));
      grp_time += static_cast<double>(
          run(Mode::kGroupedScm, threads, groups, ops, write_pct, 1 + s, &grp_stats));
    }
    table.row({std::to_string(groups), Table::num(scm_time / seeds, 0),
               Table::num(grp_time / seeds, 0), Table::num(scm_time / grp_time),
               std::to_string(scm_stats.aux_acquisitions / seeds),
               std::to_string(grp_stats.aux_acquisitions / seeds)});
  }
  table.print();
  std::printf(
      "\nExpected: with one conflict group the schemes tie by construction.  "
      "With several independent groups and sporadic (mostly-read) conflicts, "
      "grouped SCM avoids cross-group serialization on the single auxiliary "
      "queue and wins modestly.  Under continuous conflicts the win "
      "disappears: serializing everything is then near-optimal anyway, and "
      "the finer groups just pay more serializing-path round trips — which "
      "is presumably why the paper left the policy as future work.\n");
  return 0;
}
