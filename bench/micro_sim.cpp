// Google-benchmark micro-benchmarks of the simulator engine itself:
// wall-clock cost of simulation events, transactions, and contended runs.
// These measure the harness, not the paper's claims — useful for spotting
// regressions in the discrete-event core.
#include <benchmark/benchmark.h>

#include "ds/rbtree.h"
#include "elision/elided_lock.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace {

using namespace sihle;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> load_loop(Ctx& c, Counter& cnt, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = co_await c.load(cnt.value);
    (void)v;
  }
}

void BM_NonTxLoadEvent(benchmark::State& state) {
  for (auto _ : state) {
    Machine m;
    Counter cnt(m);
    m.spawn([&](Ctx& c) { return load_loop(c, cnt, 10000); });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_NonTxLoadEvent)->Unit(benchmark::kMillisecond);

sim::Task<void> tx_loop(Ctx& c, Counter& cnt, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto s = co_await c.with_tx([&c, &cnt] {
      return [](Ctx& cc, Counter& k) -> sim::Task<void> {
        const std::uint64_t v = co_await cc.load(k.value);
        co_await cc.store(k.value, v + 1);
      }(c, cnt);
    });
    (void)s;
  }
}

void BM_CommittedTransaction(benchmark::State& state) {
  for (auto _ : state) {
    Machine m;
    Counter cnt(m);
    m.spawn([&](Ctx& c) { return tx_loop(c, cnt, 5000); });
    m.run();
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_CommittedTransaction)->Unit(benchmark::kMillisecond);

sim::Task<void> contended_worker(Ctx& c, elision::Policy policy,
                                 elision::ElidedLock& lock, ds::RBTree& tree,
                                 int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(256));
    co_await elision::run_cs(
        policy, c, lock,
        [&tree, key](Ctx& cc) -> sim::Task<void> {
          return [](Ctx& c2, ds::RBTree& t, std::int64_t k) -> sim::Task<void> {
            const bool r = co_await t.insert(c2, k);
            if (!r) co_await t.erase(c2, k);
          }(cc, tree, key);
        },
        st);
  }
}

void BM_ContendedTreeRun(benchmark::State& state) {
  const auto scheme = static_cast<elision::Scheme>(state.range(0));
  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    Machine::Config mc;
    mc.htm.spurious_abort_per_access = 1e-4;
    Machine m(mc);
    elision::ElidedLock lock(m, locks::LockKind::kTtas);
    ds::RBTree tree(m);
    for (int k = 0; k < 256; k += 2) tree.debug_insert(k);
    std::vector<stats::OpStats> st(8);
    for (int t = 0; t < 8; ++t) {
      m.spawn([&, t](Ctx& c) {
        return contended_worker(c, scheme, lock, tree, 500, st[t]);
      });
    }
    m.run();
    total_ops += 8 * 500;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_ops));
}
BENCHMARK(BM_ContendedTreeRun)
    ->Arg(static_cast<int>(elision::Scheme::kStandard))
    ->Arg(static_cast<int>(elision::Scheme::kHle))
    ->Arg(static_cast<int>(elision::Scheme::kHleScm))
    ->Arg(static_cast<int>(elision::Scheme::kOptSlr))
    ->Unit(benchmark::kMillisecond);

}  // namespace
