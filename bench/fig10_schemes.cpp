// Figure 10 — "Speedup of the generic software lock-elision schemes
// compared to Haswell HLE": for each contention mix and tree size, each
// software scheme's throughput normalized to the plain-HLE version of the
// same lock (1.0 = plain HLE).
//
// Runs on the parallel experiment engine (docs/EXPERIMENTS.md): the full
// (lock × mix × size × scheme) grid is replicated over consecutive seeds
// and fanned out across host threads, so wall-clock shrinks ~jobs×.
//
// Flags: --sizes=... --threads=N --duration-ms=F
//        --jobs=N --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
//
// Observability: --trace-out=FILE (or SIHLE_TRACE=FILE) exports one
// first-seed timeline per lock × mix × scheme (plain HLE included), the
// scheme-contrast companion to the figure's end-of-run averages; traced
// runs execute sequentially on the main thread, after the engine pass.
#include <cstdio>

#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"
#include "stats/export.h"
#include "stats/timeline.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

namespace {

struct Mix {
  const char* name;   // paper's label, used in printed table headings
  const char* key;    // short axis value, used in cell ids
  int update_pct;
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const exp::CliOptions cli = exp::parse_cli(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = harness::paper_sizes();

  const elision::Scheme soft_schemes[] = {
      elision::Scheme::kHleRetries, elision::Scheme::kHleScm,
      elision::Scheme::kOptSlr, elision::Scheme::kSlrScm};
  const Mix mixes[] = {{"Lookups-Only", "0", 0},
                       {"10% insertion 10% deletion 80% lookups", "20", 20},
                       {"50% insertion 50% deletion", "100", 100}};
  const locks::LockKind lock_kinds[] = {locks::LockKind::kTtas,
                                        locks::LockKind::kMcs};

  auto cell_config = [&](locks::LockKind lock, const Mix& mix, std::size_t size,
                         elision::Scheme scheme) {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.tree_size = size;
    cfg.update_pct = mix.update_pct;
    cfg.lock = lock;
    cfg.scheme = scheme;
    cfg.duration =
        static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
    return cfg;
  };

  // Grid order (lock-major, then mix, size, scheme-with-HLE-first) is the
  // presentation order below and the cell order in the results file.
  exp::ExperimentSpec spec;
  spec.name = "fig10";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;
  for (locks::LockKind lock : lock_kinds) {
    for (const Mix& mix : mixes) {
      for (std::size_t size : sizes) {
        auto add = [&](elision::Scheme scheme) {
          exp::add_workload_cell(spec,
                                 {{"lock", locks::to_string(lock)},
                                  {"mix", mix.key},
                                  {"size", harness::size_label(size)},
                                  {"scheme", elision::to_string(scheme)}},
                                 cell_config(lock, mix, size, scheme));
        };
        add(elision::Scheme::kHle);
        for (elision::Scheme scheme : soft_schemes) add(scheme);
      }
    }
  }

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Figure 10: software schemes normalized to the plain-HLE version of "
      "the same lock (%d threads; 1.0 = plain HLE; %d replicate(s)/cell)\n\n",
      threads, spec.replicates);

  std::size_t next = 0;
  for (locks::LockKind lock : lock_kinds) {
    for (const Mix& mix : mixes) {
      Table table({"size", "HLE-retries", "HLE-SCM", "opt SLR", "SLR-SCM"});
      for (std::size_t size : sizes) {
        const double hle = results[next].metric_mean("ops_per_mcycle");
        ++next;
        std::vector<std::string> row{harness::size_label(size)};
        for (std::size_t s = 0; s < std::size(soft_schemes); ++s) {
          row.push_back(
              Table::num(results[next].metric_mean("ops_per_mcycle") / hle));
          ++next;
        }
        table.row(std::move(row));
      }
      std::printf("%s lock — %s:\n", locks::to_string(lock), mix.name);
      table.print();
      std::printf("\n");
    }
  }

  // Scheme-contrast timelines: one traced first-seed run per lock × mix ×
  // scheme at the sweep's first size, sequential and main-thread only (the
  // engine pass above never attaches trace sinks).
  const harness::TraceOptions trace_opts = harness::parse_trace(args);
  stats::TraceWriter trace_writer;
  if (trace_opts.enabled()) {
    for (locks::LockKind lock : lock_kinds) {
      for (const Mix& mix : mixes) {
        auto run_traced = [&](elision::Scheme scheme) {
          WorkloadConfig cfg = cell_config(lock, mix, sizes.front(), scheme);
          cfg.seed = 1;
          stats::EventTrace events;
          cfg.events = &events;
          (void)harness::run_rbtree_workload(cfg);
          stats::TraceRunMeta meta;
          meta.scheme = elision::policy_label(cfg.scheme);
          meta.lock = locks::to_string(cfg.lock);
          meta.label = meta.scheme + "/" + meta.lock + "/" +
                       mix.name + "/size=" + harness::size_label(cfg.tree_size);
          meta.threads = cfg.threads;
          meta.seed = cfg.seed;
          trace_writer.add_run(meta, events, trace_opts.window_cycles(cfg.costs),
                               {}, trace_opts.include_events);
        };
        run_traced(elision::Scheme::kHle);
        for (elision::Scheme scheme : soft_schemes) run_traced(scheme);
      }
    }
  }

  std::printf(
      "Paper shape: TTAS lookups-only — no scheme improves on plain HLE.  "
      "TTAS with updates — up to ~3.5x gains, HLE-SCM strongest on short "
      "transactions.  MCS — 2-10x gains for SCM/SLR at every mix (spurious "
      "aborts alone lemming plain HLE), while HLE-retries fails to help "
      "under load.\n");
  harness::finish_trace(trace_opts, trace_writer);
  return exp::finish_cli(spec, results, cli);
}
