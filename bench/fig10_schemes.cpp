// Figure 10 — "Speedup of the generic software lock-elision schemes
// compared to Haswell HLE": for each contention mix and tree size, each
// software scheme's throughput normalized to the plain-HLE version of the
// same lock (1.0 = plain HLE).
//
// Flags: --sizes=... --threads=N --seeds=N --duration-ms=F
//
// Observability: --trace-out=FILE (or SIHLE_TRACE=FILE) exports one
// first-seed timeline per lock × mix × scheme (plain HLE included), the
// scheme-contrast companion to the figure's end-of-run averages; see
// docs/OBSERVABILITY.md.
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"
#include "stats/export.h"
#include "stats/timeline.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = harness::paper_sizes();

  const harness::TraceOptions trace_opts = harness::parse_trace(args);
  stats::TraceWriter trace_writer;
  // Scheme-contrast timelines: one traced first-seed run per lock × mix ×
  // scheme at the sweep's first size (the figure itself averages over seeds).
  auto run_traced = [&](WorkloadConfig cfg, const char* mix_name) {
    cfg.seed = 1;
    stats::EventTrace events;
    cfg.events = &events;
    (void)harness::run_rbtree_workload(cfg);
    stats::TraceRunMeta meta;
    meta.scheme = elision::to_string(cfg.scheme);
    meta.lock = locks::to_string(cfg.lock);
    meta.label = std::string(meta.scheme) + "/" + meta.lock + "/" + mix_name +
                 "/size=" + harness::size_label(cfg.tree_size);
    meta.threads = cfg.threads;
    meta.seed = cfg.seed;
    trace_writer.add_run(meta, events, trace_opts.window_cycles(cfg.costs), {},
                         trace_opts.include_events);
  };

  const elision::Scheme schemes[] = {
      elision::Scheme::kHleRetries, elision::Scheme::kHleScm,
      elision::Scheme::kOptSlr, elision::Scheme::kSlrScm};

  struct Mix {
    const char* name;
    int update_pct;
  };
  const Mix mixes[] = {{"Lookups-Only", 0},
                       {"10% insertion 10% deletion 80% lookups", 20},
                       {"50% insertion 50% deletion", 100}};

  std::printf(
      "Figure 10: software schemes normalized to the plain-HLE version of "
      "the same lock (%d threads; 1.0 = plain HLE)\n\n",
      threads);

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    for (const Mix& mix : mixes) {
      Table table({"size", "HLE-retries", "HLE-SCM", "opt SLR", "SLR-SCM"});
      for (std::size_t size : sizes) {
        WorkloadConfig cfg;
        cfg.threads = threads;
        cfg.tree_size = size;
        cfg.update_pct = mix.update_pct;
        cfg.lock = lock;
        cfg.duration =
            static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
        cfg.scheme = elision::Scheme::kHle;
        const double hle = harness::average_throughput(cfg, seeds);
        if (trace_opts.enabled() && size == sizes.front()) run_traced(cfg, mix.name);

        std::vector<std::string> row{harness::size_label(size)};
        for (elision::Scheme scheme : schemes) {
          cfg.scheme = scheme;
          row.push_back(Table::num(harness::average_throughput(cfg, seeds) / hle));
          if (trace_opts.enabled() && size == sizes.front()) run_traced(cfg, mix.name);
        }
        table.row(std::move(row));
      }
      std::printf("%s lock — %s:\n", locks::to_string(lock), mix.name);
      table.print();
      std::printf("\n");
    }
  }
  std::printf(
      "Paper shape: TTAS lookups-only — no scheme improves on plain HLE.  "
      "TTAS with updates — up to ~3.5x gains, HLE-SCM strongest on short "
      "transactions.  MCS — 2-10x gains for SCM/SLR at every mix (spurious "
      "aborts alone lemming plain HLE), while HLE-retries fails to help "
      "under load.\n");
  harness::finish_trace(trace_opts, trace_writer);
  return 0;
}
