// Figure 2 — "Lemming effect, 8 threads, 10% insertion 10% deletion 80%
// lookups": for each tree size, the HLE speedup over the standard lock, the
// average number of execution attempts per critical section, the fraction
// of operations completing non-speculatively, and (for TTAS) the fraction
// of arrivals that found the lock held.
//
// Runs on the parallel experiment engine (docs/EXPERIMENTS.md): each
// (lock × size × {HLE, Standard}) cell is replicated over consecutive
// seeds and fanned out across host threads.
//
// Flags: --sizes=2,8,... --threads=N --updates=PCT --duration-ms=F
//        --locks=ttas,mcs,eticket,eclh
//        --jobs=N --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
//
// Observability: --trace-out=FILE (or SIHLE_TRACE=FILE) exports a
// time-sliced JSON timeline of one first-seed HLE run per lock × size,
// including the lemming-effect detector's verdict; --trace-window-ms= sets
// the window width and --trace-events embeds the raw event stream for
// tools/trace/trace_report replay.  Traced runs execute sequentially on the
// main thread, after the engine pass.
#include <cstdio>

#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"
#include "stats/export.h"
#include "stats/timeline.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const exp::CliOptions cli = exp::parse_cli(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = harness::paper_sizes();
  const std::vector<std::string> lock_names =
      args.get_list("locks", {"ttas", "mcs"});

  auto cell_config = [&](locks::LockKind lock, std::size_t size,
                         elision::Scheme scheme) {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.tree_size = size;
    cfg.update_pct = updates;
    cfg.lock = lock;
    cfg.scheme = scheme;
    cfg.duration =
        static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
    return cfg;
  };

  exp::ExperimentSpec spec;
  spec.name = "fig2";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;
  for (const auto& lock_name : lock_names) {
    const locks::LockKind lock = harness::parse_lock(lock_name);
    for (std::size_t size : sizes) {
      for (elision::Scheme scheme :
           {elision::Scheme::kHle, elision::Scheme::kStandard}) {
        exp::add_workload_cell(spec,
                               {{"lock", locks::to_string(lock)},
                                {"size", harness::size_label(size)},
                                {"scheme", elision::to_string(scheme)}},
                               cell_config(lock, size, scheme));
      }
    }
  }

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Figure 2: lemming effect under HLE (%d threads, %d%%/%d%%/%d%% "
      "insert/delete/lookup; %d replicate(s)/cell)\n\n",
      threads, updates / 2, updates / 2, 100 - updates, spec.replicates);

  std::size_t next = 0;
  for (const auto& lock_name : lock_names) {
    const locks::LockKind lock = harness::parse_lock(lock_name);
    Table table({"size", "speedup(HLE/std)", "attempts/op", "nonspec-frac",
                 "arrive-lock-held"});
    for (std::size_t size : sizes) {
      const exp::CellResult& hle = results[next];
      const exp::CellResult& std_lock = results[next + 1];
      next += 2;
      const double speedup = hle.metric_mean("ops_per_mcycle") /
                             std_lock.metric_mean("ops_per_mcycle");
      table.row({harness::size_label(size), Table::num(speedup),
                 Table::num(hle.metric_mean("attempts_per_op")),
                 Table::num(hle.metric_mean("nonspec_fraction"), 3),
                 lock == locks::LockKind::kTtas
                     ? Table::num(
                           hle.metric_mean("arrival_lock_held_fraction"), 3)
                     : std::string("-")});
    }
    std::printf("HLE %s lock:\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }

  // Lemming timelines: one traced first-seed HLE run per lock × size,
  // sequential and main-thread only (engine runs never attach trace sinks).
  const harness::TraceOptions trace_opts = harness::parse_trace(args);
  stats::TraceWriter trace_writer;
  if (trace_opts.enabled()) {
    for (const auto& lock_name : lock_names) {
      const locks::LockKind lock = harness::parse_lock(lock_name);
      for (std::size_t size : sizes) {
        WorkloadConfig cfg = cell_config(lock, size, elision::Scheme::kHle);
        cfg.seed = cli.base_seed;
        stats::EventTrace events;
        cfg.events = &events;
        (void)harness::run_rbtree_workload(cfg);
        stats::TraceRunMeta meta;
        meta.label = std::string("hle/") + locks::to_string(lock) +
                     "/size=" + harness::size_label(size);
        meta.scheme = elision::policy_label(cfg.scheme);
        meta.lock = locks::to_string(lock);
        meta.threads = threads;
        meta.seed = cfg.seed;
        trace_writer.add_run(meta, events, trace_opts.window_cycles(cfg.costs),
                             {}, trace_opts.include_events);
      }
    }
  }

  std::printf(
      "Paper shape: HLE-MCS completes virtually all operations "
      "non-speculatively at every size (speedup ~1); HLE-TTAS recovers, "
      "needing 2-3.5 attempts/op at small sizes with a 30-70%% speculative "
      "fraction, and approaches full speculation on large trees.\n");
  harness::finish_trace(trace_opts, trace_writer);
  return exp::finish_cli(spec, results, cli);
}
