// Figure 2 — "Lemming effect, 8 threads, 10% insertion 10% deletion 80%
// lookups": for each tree size, the HLE speedup over the standard lock, the
// average number of execution attempts per critical section, the fraction
// of operations completing non-speculatively, and (for TTAS) the fraction
// of arrivals that found the lock held.
//
// Flags: --sizes=2,8,... --threads=N --updates=PCT --seeds=N
//        --duration-ms=F --locks=ttas,mcs,eticket,eclh
//
// Observability: --trace-out=FILE (or SIHLE_TRACE=FILE) exports a
// time-sliced JSON timeline of every first-seed HLE run (one labelled run
// per lock × size), including the lemming-effect detector's verdict;
// --trace-window-ms= sets the window width and --trace-events embeds the
// raw event stream for tools/trace/trace_report replay.
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"
#include "stats/export.h"
#include "stats/timeline.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);
  const harness::TraceOptions trace_opts = harness::parse_trace(args);
  stats::TraceWriter trace_writer;

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = harness::paper_sizes();

  std::printf(
      "Figure 2: lemming effect under HLE (%d threads, %d%%/%d%%/%d%% "
      "insert/delete/lookup)\n\n",
      threads, updates / 2, updates / 2, 100 - updates);

  for (const auto& lock_name : args.get_list("locks", {"ttas", "mcs"})) {
    const locks::LockKind lock = harness::parse_lock(lock_name);
    Table table({"size", "speedup(HLE/std)", "attempts/op", "nonspec-frac",
                 "arrive-lock-held"});
    for (std::size_t size : sizes) {
      WorkloadConfig cfg;
      cfg.threads = threads;
      cfg.tree_size = size;
      cfg.update_pct = updates;
      cfg.lock = lock;
      cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);

      double hle_thr = 0.0;
      double std_thr = 0.0;
      stats::OpStats hle_stats;
      for (int s = 0; s < seeds; ++s) {
        cfg.seed = 1 + s;
        cfg.scheme = elision::Scheme::kHle;
        // Trace the first-seed HLE run of each lock × size configuration.
        stats::EventTrace events;
        cfg.events = trace_opts.enabled() && s == 0 ? &events : nullptr;
        auto hle = harness::run_rbtree_workload(cfg);
        if (cfg.events != nullptr) {
          stats::TraceRunMeta meta;
          meta.label = std::string("hle/") + locks::to_string(lock) +
                       "/size=" + harness::size_label(size);
          meta.scheme = elision::to_string(cfg.scheme);
          meta.lock = locks::to_string(lock);
          meta.threads = threads;
          meta.seed = cfg.seed;
          trace_writer.add_run(meta, events,
                               trace_opts.window_cycles(cfg.costs), {},
                               trace_opts.include_events);
        }
        cfg.events = nullptr;
        hle_thr += hle.ops_per_mcycle;
        hle_stats += hle.stats;
        cfg.scheme = elision::Scheme::kStandard;
        std_thr += harness::run_rbtree_workload(cfg).ops_per_mcycle;
      }
      table.row({harness::size_label(size), Table::num(hle_thr / std_thr),
                 Table::num(hle_stats.attempts_per_op()),
                 Table::num(hle_stats.nonspec_fraction(), 3),
                 lock == locks::LockKind::kTtas
                     ? Table::num(hle_stats.arrival_lock_held_fraction(), 3)
                     : std::string("-")});
    }
    std::printf("HLE %s lock:\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: HLE-MCS completes virtually all operations "
      "non-speculatively at every size (speedup ~1); HLE-TTAS recovers, "
      "needing 2-3.5 attempts/op at small sizes with a 30-70%% speculative "
      "fraction, and approaches full speculation on large trees.\n");
  harness::finish_trace(trace_opts, trace_writer);
  return 0;
}
