// §7.1 "Analysis" — the paper defers the detailed per-scheme breakdown of
// attempts per successful operation and the fraction of operations
// completing speculatively to the technical report.  This bench produces
// that analysis for the red-black-tree workload.
//
// Flags: --threads=N --updates=PCT --seeds=N --sizes=... --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  const double duration_ms = args.get_double("duration-ms", 1.0);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = {32, 512, 8192};

  std::printf(
      "TR analysis: attempts per successful operation and speculative "
      "completion fraction, per scheme (%d threads, %d%% updates)\n\n",
      threads, updates);

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    for (std::size_t size : sizes) {
      Table table({"scheme", "attempts/op", "spec-frac", "aux-entries/op",
                   "dominant abort cause"});
      for (elision::Scheme scheme : elision::kAllSchemes) {
        if (scheme == elision::Scheme::kStandard) continue;
        stats::OpStats total;
        for (int s = 0; s < seeds; ++s) {
          WorkloadConfig cfg;
          cfg.threads = threads;
          cfg.tree_size = size;
          cfg.update_pct = updates;
          cfg.lock = lock;
          cfg.scheme = scheme;
          cfg.seed = 1 + s;
          cfg.duration =
              static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
          total += harness::run_rbtree_workload(cfg).stats;
        }
        std::size_t dominant = 0;
        for (std::size_t i = 1; i < htm::kNumAbortCauses; ++i) {
          if (total.abort_causes[i] > total.abort_causes[dominant]) dominant = i;
        }
        table.row(
            {elision::to_string(scheme), Table::num(total.attempts_per_op()),
             Table::num(1.0 - total.nonspec_fraction(), 3),
             Table::num(static_cast<double>(total.aux_acquisitions) /
                            static_cast<double>(total.ops()),
                        3),
             total.aborts == 0
                 ? "-"
                 : std::string(htm::to_string(static_cast<htm::AbortCause>(dominant)))});
      }
      std::printf("%s lock, %zu nodes:\n", locks::to_string(lock), size);
      table.print();
      std::printf("\n");
    }
  }
  std::printf(
      "Reading: plain HLE on MCS shows ~2 attempts/op and ~0 speculative "
      "fraction (every op runs once speculatively, aborts, and once under "
      "the lock); SCM absorbs the same conflicts into the auxiliary queue "
      "and keeps the speculative fraction ~1; SLR trades more aborted "
      "attempts for lock-free commits.\n");
  return 0;
}
