// Extension ablation — glibc's production elision policy vs. the paper's
// schemes.  glibc's __lll_lock_elision retries only aborts with the retry
// bit set and penalizes the lock (no elision for the next 3 acquisitions)
// on a busy observation or a persistent abort.  That policy protects
// pathological workloads but gives up speculation quickly; the paper's
// schemes keep speculating.
//
// Flags: --sizes=... --threads=N --updates=PCT --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = {8, 128, 2048, 32768};

  std::printf(
      "Adaptive (glibc) elision vs the paper's schemes: RB-tree, %d threads, "
      "%d%% updates; speedup over the standard version of each lock\n\n",
      threads, updates);

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    Table table({"size", "HLE", "adaptive", "HLE-retries", "HLE-SCM", "opt SLR"});
    for (std::size_t size : sizes) {
      WorkloadConfig cfg;
      cfg.threads = threads;
      cfg.tree_size = size;
      cfg.update_pct = updates;
      cfg.lock = lock;
      cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
      cfg.scheme = elision::Scheme::kStandard;
      const double base = harness::average_throughput(cfg, seeds);

      std::vector<std::string> row{harness::size_label(size)};
      for (elision::Scheme scheme :
           {elision::Scheme::kHle, elision::Scheme::kAdaptive,
            elision::Scheme::kHleRetries, elision::Scheme::kHleScm,
            elision::Scheme::kOptSlr}) {
        cfg.scheme = scheme;
        row.push_back(Table::num(harness::average_throughput(cfg, seeds) / base));
      }
      table.row(std::move(row));
    }
    std::printf("%s lock:\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: with back-to-back critical sections, any busy observation "
      "or persistent abort penalizes the lock, the resulting non-elided "
      "sections make the lock look busy to everyone else, and the penalty "
      "cascades — adaptation converges to never eliding (~1.0x).  This is "
      "the known production behaviour of glibc's elision under contention "
      "(and part of why it shipped disabled by default); the paper's "
      "schemes keep speculating instead.\n");
  return 0;
}
