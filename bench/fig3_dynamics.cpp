// Figure 3 — "Serialization dynamics of HLE execution, 8 threads, size 64":
// the run is divided into 1-simulated-millisecond slots; for each slot we
// report throughput normalized to the whole-run average and the fraction of
// operations that completed non-speculatively.
//
// Flags: --slots=N --threads=N --size=N --updates=PCT --seed=N
//
// Observability: --trace-out=FILE (or SIHLE_TRACE=FILE) exports the same
// dynamics as a structured JSON timeline (one run per lock), with the
// lemming detector's verdict; --trace-window-ms= / --trace-events as in
// fig2_lemming.
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"
#include "stats/export.h"
#include "stats/timeline.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int slots = static_cast<int>(args.get_int("slots", 40));
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 64));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  harness::TraceOptions trace_opts = harness::parse_trace(args);
  // Default the trace window to this figure's 1 ms slot width.
  if (!args.has("trace-window-ms")) trace_opts.window_ms = 1.0;
  stats::TraceWriter trace_writer;

  std::printf(
      "Figure 3: HLE serialization dynamics over time (%d threads, tree size "
      "%zu, %d%% updates, 1ms virtual slots)\n\n",
      threads, size, updates);

  for (const char* lock_name : {"mcs", "ttas"}) {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.tree_size = size;
    cfg.update_pct = updates;
    cfg.scheme = elision::Scheme::kHle;
    cfg.lock = harness::parse_lock(lock_name);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
    cfg.record_slices = true;
    cfg.duration = static_cast<sim::Cycles>(slots) * cfg.costs.cycles_per_ms;

    stats::EventTrace events;
    cfg.events = trace_opts.enabled() ? &events : nullptr;
    auto r = harness::run_rbtree_workload(cfg);
    if (cfg.events != nullptr) {
      stats::TraceRunMeta meta;
      meta.label = std::string("hle/") + locks::to_string(cfg.lock);
      meta.scheme = elision::policy_label(cfg.scheme);
      meta.lock = locks::to_string(cfg.lock);
      meta.threads = threads;
      meta.seed = cfg.seed;
      trace_writer.add_run(meta, events, trace_opts.window_cycles(cfg.costs),
                           {}, trace_opts.include_events);
    }
    const auto& sl = *r.slices;
    double mean_ops = 0.0;
    std::size_t full_slots = std::min<std::size_t>(sl.slices(), slots);
    for (std::size_t i = 0; i < full_slots; ++i) mean_ops += static_cast<double>(sl.ops_in(i));
    mean_ops /= full_slots != 0 ? static_cast<double>(full_slots) : 1.0;

    Table table({"t[ms]", "norm-throughput", "nonspec-frac", "bar"});
    for (std::size_t i = 0; i < full_slots; ++i) {
      const double norm =
          mean_ops > 0 ? static_cast<double>(sl.ops_in(i)) / mean_ops : 0.0;
      const double nonspec =
          sl.ops_in(i) > 0
              ? static_cast<double>(sl.nonspec_in(i)) / static_cast<double>(sl.ops_in(i))
              : 0.0;
      table.row({std::to_string(i), Table::num(norm), Table::num(nonspec, 3),
                 std::string(static_cast<std::size_t>(norm * 20), '#')});
    }
    std::printf("HLE %s lock (whole-run nonspec fraction %.3f):\n",
                locks::to_string(cfg.lock), r.stats.nonspec_fraction());
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: with MCS every slot is ~100%% non-speculative (flat, "
      "serialized).  With TTAS most slots are speculative, but serialization "
      "bursts appear as slots with elevated nonspec fraction and throughput "
      "dips of up to ~2.5x.\n");
  harness::finish_trace(trace_opts, trace_writer);
  return 0;
}
