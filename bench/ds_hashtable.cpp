// §7.1 hash-table benchmark — the paper notes the hash-table results are
// comparable to the red-black tree's short-transaction regime ("hash table
// transactions are always short and therefore zoom in on the short
// transaction portion of the red-black workload spectrum").  This bench
// reports scheme speedups over plain HLE on the hash table.
//
// Flags: --sizes=... --threads=N --updates=PCT --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::vector<std::size_t> sizes;
  for (const auto& s : args.get_list("sizes", {})) sizes.push_back(std::stoul(s));
  if (sizes.empty()) sizes = {64, 512, 8192, 131072};

  std::printf(
      "Hash table (chained, single global lock), %d threads, %d%% updates; "
      "normalized to plain HLE of the same lock\n\n",
      threads, updates);

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    Table table(
        {"size", "std/HLE", "HLE-retries", "HLE-SCM", "opt SLR", "SLR-SCM"});
    for (std::size_t size : sizes) {
      WorkloadConfig cfg;
      cfg.ds = harness::DsKind::kHashTable;
      cfg.threads = threads;
      cfg.tree_size = size;
      cfg.update_pct = updates;
      cfg.lock = lock;
      cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
      cfg.scheme = elision::Scheme::kHle;
      const double hle = harness::average_throughput(cfg, seeds);

      std::vector<std::string> row{harness::size_label(size)};
      for (elision::Scheme scheme :
           {elision::Scheme::kStandard, elision::Scheme::kHleRetries,
            elision::Scheme::kHleScm, elision::Scheme::kOptSlr,
            elision::Scheme::kSlrScm}) {
        cfg.scheme = scheme;
        row.push_back(Table::num(harness::average_throughput(cfg, seeds) / hle));
      }
      table.row(std::move(row));
    }
    std::printf("%s lock:\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: same orderings as the short-transaction end of the "
      "red-black tree spectrum — HLE-SCM is the strongest software scheme, "
      "and MCS needs the software schemes to see any benefit at all.\n");
  return 0;
}
