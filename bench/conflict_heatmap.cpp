// Conflict-location analysis (ours) — the paper's conclusion names the
// conflict location as the hardware hint that would enable refined conflict
// management.  This bench asks how useful that hint would be on the
// red-black-tree workload: how concentrated are conflicts on a few hot
// lines (the root region) vs spread across the structure?
//
// Flags: --threads=N --updates=PCT --duration-ms=F
#include <cstdio>
#include <set>
#include <vector>

#include "ds/rbtree.h"
#include "elision/elided_lock.h"
#include "harness/cli.h"
#include "harness/table.h"
#include "runtime/ctx.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using runtime::Ctx;
using runtime::Machine;

namespace {

sim::Task<void> tree_worker(Ctx& c, elision::ElidedLock& lock, ds::RBTree& tree,
                            std::uint64_t domain, int updates,
                            sim::Cycles duration, stats::OpStats& st) {
  const elision::Policy policy = elision::Scheme::kHle;
  const sim::Cycles t0 = c.now();
  while (c.now() - t0 < duration) {
    const auto key = static_cast<std::int64_t>(c.rng().below(domain));
    const int dice = static_cast<int>(c.rng().below(100));
    if (dice < updates / 2) {
      co_await elision::run_cs(
          policy, c, lock,
          [&tree, key](Ctx& cc) -> sim::Task<void> {
            return [](Ctx& c2, ds::RBTree& t, std::int64_t k) -> sim::Task<void> {
              const bool r = co_await t.insert(c2, k);
              (void)r;
            }(cc, tree, key);
          },
          st);
    } else if (dice < updates) {
      co_await elision::run_cs(
          policy, c, lock,
          [&tree, key](Ctx& cc) -> sim::Task<void> {
            return [](Ctx& c2, ds::RBTree& t, std::int64_t k) -> sim::Task<void> {
              const bool r = co_await t.erase(c2, k);
              (void)r;
            }(cc, tree, key);
          },
          st);
    } else {
      co_await elision::run_cs(
          policy, c, lock,
          [&tree, key](Ctx& cc) -> sim::Task<void> {
            return [](Ctx& c2, ds::RBTree& t, std::int64_t k) -> sim::Task<void> {
              const bool r = co_await t.contains(c2, k);
              (void)r;
            }(cc, tree, key);
          },
          st);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const double duration_ms = args.get_double("duration-ms", 1.0);

  std::printf(
      "Conflict-location concentration under HLE-TTAS (%d threads, %d%% "
      "updates): share of located conflict aborts falling on the hottest "
      "1 / 8 / 64 cache lines\n\n",
      threads, updates);

  Table table({"tree size", "conflicts located", "top-1 share", "top-8 share",
               "top-64 share"});
  for (std::size_t size : {32, 512, 8192, 131072}) {
    Machine::Config cfg;
    cfg.seed = 4;
    cfg.htm.spurious_abort_per_access = 0.0;
    cfg.htm.persistent_abort_per_tx = 0.0;
    cfg.htm.track_conflict_lines = true;
    Machine m(cfg);
    // Same sync-line allocation order as before the ElidedLock port: main
    // TTAS lock, MCS aux, then the tree.
    elision::ElidedLock lock(m, locks::LockKind::kTtas);
    ds::RBTree tree(m);
    {
      // Fixed fill seed: the heatmap compares conflict topology across
      // schemes, so the pre-fill key set must be identical in every cell.
      const std::uint64_t fill_seed = 7;
      sim::Rng fill(fill_seed);
      std::set<std::int64_t> chosen;
      while (chosen.size() < size) {
        chosen.insert(static_cast<std::int64_t>(fill.below(2 * size)));
      }
      for (auto k : chosen) tree.debug_insert(k);
    }
    std::vector<stats::OpStats> st(threads);
    const auto duration =
        static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
    for (int t = 0; t < threads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return tree_worker(c, lock, tree, 2 * size, updates, duration, st[t]);
      });
    }
    m.run();

    const auto heat = m.htm().conflict_heatmap(64);
    const double total = static_cast<double>(m.htm().located_conflicts());
    double top1 = 0.0;
    double top8 = 0.0;
    double top64 = 0.0;
    for (std::size_t i = 0; i < heat.size(); ++i) {
      const double share = total > 0 ? static_cast<double>(heat[i].second) / total : 0;
      if (i < 1) top1 += share;
      if (i < 8) top8 += share;
      top64 += share;
    }
    table.row({harness::size_label(size), std::to_string(m.htm().located_conflicts()),
               Table::num(top1, 3), Table::num(top8, 3), Table::num(top64, 3)});
  }
  table.print();
  std::printf(
      "\nReading: the single hottest line at every size is the LOCK's line — "
      "under HLE, most located conflicts are the lemming mechanism itself "
      "(the aborter's lock write dooming every reader of the lock), not "
      "data conflicts.  A conflict-location hint therefore mostly tells you "
      "what SLR and SCM already exploit structurally: stop fighting over "
      "the lock line.  The residual data conflicts (top-8 minus top-1) "
      "concentrate in the root region on small trees and scatter on large "
      "ones — consistent with grouped SCM's modest, workload-dependent "
      "wins (ablation_grouped_scm).\n");
  return 0;
}
