// §7 "Conflict management tuning" ablation.  The paper tunes each
// technique: the HLE-SCM auxiliary-lock holder retries 10 times regardless
// of the abort status (taking the main lock is expensive for HLE), while
// SLR switches to non-speculative execution as soon as the status says a
// retry is unlikely (SLR barely cares about the main lock being held).
// "We have verified that using other tuning options only degrade the
// schemes' performance."  This bench re-verifies that on the red-black
// tree, including retry-budget variations.
//
// Runs on the parallel experiment engine (docs/EXPERIMENTS.md) with a
// custom per-cell run function (each run builds its own Machine); the
// regression-gate metric is run_cycles, where lower is better.
//
// Flags: --threads=N --size=N --updates=PCT --ops=N
//        --jobs=N --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
#include <cstdio>
#include <vector>

#include "ds/rbtree.h"
#include "elision/schemes.h"
#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/table.h"
#include "runtime/ctx.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using runtime::Ctx;
using runtime::Machine;

namespace {

struct Tuning {
  const char* name;
  const char* key;            // short axis value for cell ids
  elision::ScmFlavor flavor;  // for SCM rows
  bool is_slr;                // SLR rows use run_slr
  int max_retries;
  bool honor_retry_bit;
};

sim::Task<void> tree_op(Ctx& c, ds::RBTree& t, std::int64_t key, int action) {
  if (action == 0) {
    const bool r = co_await t.insert(c, key);
    (void)r;
  } else if (action == 1) {
    const bool r = co_await t.erase(c, key);
    (void)r;
  } else {
    const bool r = co_await t.contains(c, key);
    (void)r;
  }
}

template <class Lock>
sim::Task<void> tuned_worker(Ctx& c, const Tuning tuning, Lock& lock,
                             locks::MCSLock& aux, ds::RBTree& tree,
                             std::uint64_t domain, int updates, int ops,
                             stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const auto key = static_cast<std::int64_t>(c.rng().below(domain));
    const int dice = static_cast<int>(c.rng().below(100));
    const int action = dice < updates / 2 ? 0 : (dice < updates ? 1 : 2);
    auto body = [&tree, key, action](Ctx& cc) { return tree_op(cc, tree, key, action); };
    if (tuning.is_slr) {
      co_await elision::run_slr(c, lock, body, st, tuning.max_retries,
                                tuning.honor_retry_bit);
    } else {
      co_await elision::run_scm(c, lock, aux, body, st, tuning.flavor,
                                tuning.max_retries, tuning.honor_retry_bit);
    }
  }
}

// One full simulated run under one seed; returns the virtual makespan.
double run_tuning_once(const Tuning& tuning, int threads, std::size_t size,
                       int updates, int ops, std::uint64_t seed) {
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.htm.spurious_abort_per_access = 1e-4;
  cfg.htm.persistent_abort_per_tx = 2e-3;
  Machine m(cfg);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  ds::RBTree tree(m);
  sim::Rng fill(cfg.seed ^ 0xF1F1);
  std::size_t filled = 0;
  while (filled < size) {
    const auto k = static_cast<std::int64_t>(fill.below(2 * size));
    if (!tree.debug_contains(k)) {
      tree.debug_insert(k);
      ++filled;
    }
  }
  std::vector<stats::OpStats> st(threads);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) {
      return tuned_worker<locks::MCSLock>(c, tuning, lock, aux, tree, 2 * size,
                                          updates, ops, st[t]);
    });
  }
  m.run();
  return static_cast<double>(m.exec().max_clock());
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  exp::RegressOptions regress_defaults;
  regress_defaults.metric = "run_cycles";
  regress_defaults.higher_is_better = false;
  const exp::CliOptions cli = exp::parse_cli(args, 3, regress_defaults);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const auto size = static_cast<std::size_t>(args.get_int("size", 128));
  const int updates = static_cast<int>(args.get_int("updates", 100));
  const int ops = static_cast<int>(args.get_int("ops", 1200));

  const Tuning scm_tunings[] = {
      {"HLE-SCM tuned (10 retries, ignore status)", "tuned",
       elision::ScmFlavor::kHle, false, 10, false},
      {"HLE-SCM, give up on no-retry status", "honor-status",
       elision::ScmFlavor::kHle, false, 10, true},
      {"HLE-SCM, 1 retry", "retries-1", elision::ScmFlavor::kHle, false, 1,
       false},
      {"HLE-SCM, 40 retries", "retries-40", elision::ScmFlavor::kHle, false, 40,
       false},
  };
  const Tuning slr_tunings[] = {
      {"opt SLR tuned (10 retries, honor status)", "tuned",
       elision::ScmFlavor::kSlr, true, 10, true},
      {"opt SLR, ignore status (always 10)", "ignore-status",
       elision::ScmFlavor::kSlr, true, 10, false},
      {"opt SLR, 1 retry", "retries-1", elision::ScmFlavor::kSlr, true, 1, true},
      {"opt SLR, 40 retries", "retries-40", elision::ScmFlavor::kSlr, true, 40,
       true},
  };

  exp::ExperimentSpec spec;
  spec.name = "ablation_tuning";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;
  auto add_cell = [&](const char* family, const Tuning& t) {
    exp::Cell cell;
    cell.axes = {{"family", family}, {"tuning", t.key}};
    cell.id = exp::axes_id(cell.axes);
    cell.run = [t, threads, size, updates, ops](std::uint64_t seed) {
      const double cycles = run_tuning_once(t, threads, size, updates, ops, seed);
      return exp::MetricList{{"run_cycles", cycles}};
    };
    spec.cells.push_back(std::move(cell));
  };
  for (const Tuning& t : scm_tunings) add_cell("hle-scm", t);
  for (const Tuning& t : slr_tunings) add_cell("opt-slr", t);

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Conflict-management tuning ablation (§7): %zu-node tree, %d threads, "
      "%d%% updates, MCS lock; run time relative to each technique's "
      "paper-tuned configuration (1.00 = tuned, >1 = slower; %d "
      "replicate(s)/cell)\n\n",
      size, threads, updates, spec.replicates);

  std::size_t next = 0;
  for (const auto* family : {&scm_tunings, &slr_tunings}) {
    Table table({"tuning", "relative run time"});
    const double tuned = results[next].metric_mean("run_cycles");
    for (const Tuning& t : *family) {
      table.row({t.name,
                 Table::num(results[next].metric_mean("run_cycles") / tuned)});
      ++next;
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: the paper-tuned rows are at or near the minimum of their "
      "family — other options degrade (or at best match) performance, as §7 "
      "reports.\n");
  return exp::finish_cli(spec, results, cli);
}
