// §7 "Conflict management tuning" ablation.  The paper tunes each
// technique: the HLE-SCM auxiliary-lock holder retries 10 times regardless
// of the abort status (taking the main lock is expensive for HLE), while
// SLR switches to non-speculative execution as soon as the status says a
// retry is unlikely (SLR barely cares about the main lock being held).
// "We have verified that using other tuning options only degrade the
// schemes' performance."  This bench re-verifies that on the red-black
// tree, including retry-budget variations.
//
// Flags: --threads=N --size=N --updates=PCT --seeds=N --ops=N
#include <cstdio>
#include <vector>

#include "ds/rbtree.h"
#include "elision/schemes.h"
#include "harness/cli.h"
#include "harness/table.h"
#include "runtime/ctx.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using runtime::Ctx;
using runtime::Machine;

namespace {

struct Tuning {
  const char* name;
  elision::ScmFlavor flavor;  // for SCM rows
  bool is_slr;                // SLR rows use run_slr
  int max_retries;
  bool honor_retry_bit;
};

sim::Task<void> tree_op(Ctx& c, ds::RBTree& t, std::int64_t key, int action) {
  if (action == 0) {
    const bool r = co_await t.insert(c, key);
    (void)r;
  } else if (action == 1) {
    const bool r = co_await t.erase(c, key);
    (void)r;
  } else {
    const bool r = co_await t.contains(c, key);
    (void)r;
  }
}

template <class Lock>
sim::Task<void> tuned_worker(Ctx& c, const Tuning tuning, Lock& lock,
                             locks::MCSLock& aux, ds::RBTree& tree,
                             std::uint64_t domain, int updates, int ops,
                             stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const auto key = static_cast<std::int64_t>(c.rng().below(domain));
    const int dice = static_cast<int>(c.rng().below(100));
    const int action = dice < updates / 2 ? 0 : (dice < updates ? 1 : 2);
    auto body = [&tree, key, action](Ctx& cc) { return tree_op(cc, tree, key, action); };
    if (tuning.is_slr) {
      co_await elision::run_slr(c, lock, body, st, tuning.max_retries,
                                tuning.honor_retry_bit);
    } else {
      co_await elision::run_scm(c, lock, aux, body, st, tuning.flavor,
                                tuning.max_retries, tuning.honor_retry_bit);
    }
  }
}

double run_tuning(const Tuning& tuning, int threads, std::size_t size, int updates,
                  int ops, int seeds) {
  double total_time = 0.0;
  for (int s = 0; s < seeds; ++s) {
    Machine::Config cfg;
    cfg.seed = 1 + s;
    cfg.htm.spurious_abort_per_access = 1e-4;
    cfg.htm.persistent_abort_per_tx = 2e-3;
    Machine m(cfg);
    locks::MCSLock lock(m);
    locks::MCSLock aux(m);
    ds::RBTree tree(m);
    sim::Rng fill(cfg.seed ^ 0xF1F1);
    std::size_t filled = 0;
    while (filled < size) {
      const auto k = static_cast<std::int64_t>(fill.below(2 * size));
      if (!tree.debug_contains(k)) {
        tree.debug_insert(k);
        ++filled;
      }
    }
    std::vector<stats::OpStats> st(threads);
    for (int t = 0; t < threads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return tuned_worker<locks::MCSLock>(c, tuning, lock, aux, tree, 2 * size,
                                            updates, ops, st[t]);
      });
    }
    m.run();
    total_time += static_cast<double>(m.exec().max_clock());
  }
  return total_time / seeds;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const auto size = static_cast<std::size_t>(args.get_int("size", 128));
  const int updates = static_cast<int>(args.get_int("updates", 100));
  const int ops = static_cast<int>(args.get_int("ops", 1200));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));

  std::printf(
      "Conflict-management tuning ablation (§7): %zu-node tree, %d threads, "
      "%d%% updates, MCS lock; run time relative to each technique's "
      "paper-tuned configuration (1.00 = tuned, >1 = slower)\n\n",
      size, threads, updates);

  const Tuning scm_tunings[] = {
      {"HLE-SCM tuned (10 retries, ignore status)", elision::ScmFlavor::kHle, false,
       10, false},
      {"HLE-SCM, give up on no-retry status", elision::ScmFlavor::kHle, false, 10,
       true},
      {"HLE-SCM, 1 retry", elision::ScmFlavor::kHle, false, 1, false},
      {"HLE-SCM, 40 retries", elision::ScmFlavor::kHle, false, 40, false},
  };
  const Tuning slr_tunings[] = {
      {"opt SLR tuned (10 retries, honor status)", elision::ScmFlavor::kSlr, true,
       10, true},
      {"opt SLR, ignore status (always 10)", elision::ScmFlavor::kSlr, true, 10,
       false},
      {"opt SLR, 1 retry", elision::ScmFlavor::kSlr, true, 1, true},
      {"opt SLR, 40 retries", elision::ScmFlavor::kSlr, true, 40, true},
  };

  for (const auto* family : {&scm_tunings, &slr_tunings}) {
    Table table({"tuning", "relative run time"});
    const double tuned = run_tuning((*family)[0], threads, size, updates, ops, seeds);
    for (const Tuning& t : *family) {
      const double v = run_tuning(t, threads, size, updates, ops, seeds);
      table.row({t.name, Table::num(v / tuned)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: the paper-tuned rows are at or near the minimum of their "
      "family — other options degrade (or at best match) performance, as §7 "
      "reports.\n");
  return 0;
}
