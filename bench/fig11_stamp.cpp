// Figure 11 — "Normalized run time of STAMP applications (lower is better)
// using standard locking, HLE, and the software-assisted methods": for each
// application kernel, each scheme's virtual-time makespan normalized to the
// standard (non-speculative) version of the same lock.
//
// Flags: --apps=genome,... --threads=N --seeds=N --scale=F --locks=ttas,mcs
#include <cstdio>
#include <cstring>

#include "harness/cli.h"
#include "harness/table.h"
#include "stamp/app.h"

using namespace sihle;
using harness::Args;
using harness::Table;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double scale = args.get_double("scale", 1.0);

  const auto app_filter = args.get_list("apps", {});
  auto selected = [&](const char* name) {
    if (app_filter.empty()) return true;
    for (const auto& a : app_filter) {
      if (a == name) return true;
    }
    return false;
  };

  const elision::Scheme schemes[] = {
      elision::Scheme::kHle,    elision::Scheme::kHleScm,
      elision::Scheme::kOptSlr, elision::Scheme::kSlrScm,
      elision::Scheme::kHleRetries};

  std::printf(
      "Figure 11: STAMP kernels at %d threads; run time normalized to the "
      "standard version of the same lock (lower is better)\n\n",
      threads);

  for (const auto& lock_name : args.get_list("locks", {"ttas", "mcs"})) {
    const locks::LockKind lock = harness::parse_lock(lock_name);
    Table table({"app", "HLE", "HLE-SCM", "opt SLR", "SLR-SCM", "HLE-retries",
                 "valid"});
    for (const auto& app : stamp::stamp_apps()) {
      if (!selected(app.name)) continue;
      stamp::StampConfig cfg;
      cfg.threads = threads;
      cfg.lock = lock;
      cfg.scale = scale;

      bool all_valid = true;
      auto timed = [&](elision::Scheme s) {
        cfg.scheme = s;
        double total = 0.0;
        for (int i = 0; i < seeds; ++i) {
          cfg.seed = 1 + i;
          auto r = app.run(cfg);
          all_valid = all_valid && r.valid;
          total += static_cast<double>(r.time);
        }
        return total / seeds;
      };

      const double base = timed(elision::Scheme::kStandard);
      std::vector<std::string> row{app.name};
      for (elision::Scheme s : schemes) row.push_back(Table::num(timed(s) / base));
      row.push_back(all_valid ? "yes" : "NO");
      table.row(std::move(row));
    }
    std::printf("%s lock (columns normalized to standard %s):\n",
                locks::to_string(lock), locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: HLE-MCS gains nothing (~1.0); HLE-SCM improves MCS by up "
      "to ~2.5x; optimistic SLR is usually the best scheme (up to ~2x over "
      "HLE-based schemes, up to ~4x over the plain lock); SLR-SCM ~ SLR "
      "except vacation-low; HLE-retries trails SLR on genome/yada/vacation "
      "and collapses with MCS.\n");
  return 0;
}
