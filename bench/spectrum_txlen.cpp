// Transaction-length spectrum (ours) — where does lock elision stop
// helping?  The four data structures span the read-set spectrum at the same
// element count: hash table (O(1) reads), skiplist and red-black tree
// (O(log n)), sorted linked list (O(n)).  With the read-set capacity set to
// an L2-like 1024 lines, the linked list's transactions cross the capacity
// wall as the set grows and elision collapses to the lock, scheme
// regardless — the regime the paper's techniques cannot (and do not claim
// to) fix.
//
// Flags: --threads=N --updates=PCT --seeds=N --read-lines=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  const auto read_lines =
      static_cast<std::uint32_t>(args.get_int("read-lines", 1024));
  const double duration_ms = args.get_double("duration-ms", 1.0);

  std::printf(
      "Transaction-length spectrum: HLE-TTAS speedup over the standard lock "
      "and capacity-abort share, per structure (%d threads, %d%% updates, "
      "read-set capacity %u lines)\n\n",
      threads, updates, read_lines);

  const harness::DsKind kinds[] = {
      harness::DsKind::kHashTable, harness::DsKind::kSkipList,
      harness::DsKind::kRbTree, harness::DsKind::kLinkedList};

  for (std::size_t size : {128, 512, 2048}) {
    Table table({"structure", "HLE speedup", "nonspec-frac", "capacity-abort share",
                 "HLE-SCM speedup"});
    for (harness::DsKind ds : kinds) {
      WorkloadConfig cfg;
      cfg.ds = ds;
      cfg.threads = threads;
      cfg.tree_size = size;
      cfg.update_pct = updates;
      cfg.lock = locks::LockKind::kTtas;
      cfg.max_read_lines = read_lines;
      cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);

      double hle = 0.0;
      double scm = 0.0;
      double base = 0.0;
      stats::OpStats hle_stats;
      for (int s = 0; s < seeds; ++s) {
        cfg.seed = 1 + s;
        cfg.scheme = elision::Scheme::kHle;
        auto r = harness::run_rbtree_workload(cfg);
        hle += r.ops_per_mcycle;
        hle_stats += r.stats;
        cfg.scheme = elision::Scheme::kHleScm;
        scm += harness::run_rbtree_workload(cfg).ops_per_mcycle;
        cfg.scheme = elision::Scheme::kStandard;
        base += harness::run_rbtree_workload(cfg).ops_per_mcycle;
      }
      const double cap_share =
          hle_stats.aborts == 0
              ? 0.0
              : static_cast<double>(hle_stats.abort_causes[static_cast<std::size_t>(
                    htm::AbortCause::kCapacity)]) /
                    static_cast<double>(hle_stats.aborts);
      table.row({harness::to_string(ds), Table::num(hle / base),
                 Table::num(hle_stats.nonspec_fraction(), 3),
                 Table::num(cap_share, 3), Table::num(scm / base)});
    }
    std::printf("%zu elements:\n", size);
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: short-transaction structures elide at full speed at every "
      "size; the linked list degrades as traversals approach the read-set "
      "capacity and collapses to ~1x once most operations overflow — no "
      "software scheme recovers capacity-bound transactions.\n");
  return 0;
}
