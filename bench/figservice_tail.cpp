// Open-system service tails: the sharded workload (harness/shard_workload.h)
// driven as a service — a deterministic Poisson request stream, routed by
// key ownership to one bounded queue per shard, drained by each shard's
// server pool — swept along three axes:
//
//   * offered load (arrival rate, ops/Mcycle): below, near, and beyond the
//     closed-loop capacity of the same configuration (figshard's Part A
//     puts 8 shards around ~6.8k ops/Mcycle), so the sweep crosses
//     saturation and the queueing-delay term takes over the sojourn tail;
//   * Zipf skew: hot-key skew concentrates arrivals on a few shards, whose
//     queues saturate long before the aggregate offered load reaches
//     capacity — the per-shard lemming column flags which cells turned an
//     abort storm into a standing queue;
//   * scheme: exclusive elision (hle), fair-serialized elision (hle-scm),
//     lazy subscription (slr:subscribe=commit-checked), and the
//     reader-writer family (hle-retries:mode=shared lookups over the rw
//     lock, updates on the exclusive twin).
//
// Reported per cell: p50/p99/p999 sojourn, p99 queueing delay, p99 service
// time (all virtual cycles, from the shared log-linear histogram —
// stats/latency.h), max queue depth, dropped/served, throughput, and the
// count of shards whose own timeline fired the lemming detector.  Every
// number is simulated-time and byte-identical across --jobs and
// --domain-threads; the committed baseline lives at
// results/BENCH_service.json and is gated in CI on sojourn_p99
// (lower-is-better).
//
// Flags: --requests=N (default 6000) --sessions=N (default 512)
//        --queue-cap=N (default 512, 0 = unbounded)
//        --shards=N (default 8) --tps=N (default 2) --update-pct=P
//        --keyspace=N (default 4096) --epoch-cycles=N (default 4096)
//        --domain-threads=N (default 1)
//        --jobs=N --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
#include <cstdio>
#include <string>
#include <vector>

#include "elision/registry.h"
#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/shard_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::ShardWorkloadConfig;
using harness::ShardWorkloadResult;

namespace {

// One scheme column: the policy pair and the lock it runs over.
struct SchemeRow {
  const char* label;
  const char* update_spec;  // mutations
  const char* lookup_spec;  // lookups (the shared-mode side for rw)
  locks::LockKind lock;
};

exp::RunFn service_run(ShardWorkloadConfig cfg) {
  return [cfg](std::uint64_t seed) {
    ShardWorkloadConfig c = cfg;
    c.seed = seed;
    const ShardWorkloadResult r = harness::run_shard_workload(c);
    const auto pct = [](const stats::LatencyHistogram& h, double p) {
      return static_cast<double>(h.percentile(p));
    };
    return exp::MetricList{
        {"sojourn_p50", pct(r.open.sojourn, 0.50)},
        {"sojourn_p99", pct(r.open.sojourn, 0.99)},
        {"sojourn_p999", pct(r.open.sojourn, 0.999)},
        {"qdelay_p99", pct(r.open.qdelay, 0.99)},
        {"service_p99", pct(r.open.service, 0.99)},
        {"max_queue_depth", static_cast<double>(r.open.queue.max_depth)},
        {"served", static_cast<double>(r.open.queue.served)},
        {"dropped", static_cast<double>(r.open.queue.dropped)},
        {"ops_per_mcycle", r.ops_per_mcycle},
        {"lemming_shards", static_cast<double>(r.lemming_shards)},
        // Folded to 32 bits so the value is exact in a double: equal bytes
        // across --jobs/--domain-threads ⇔ equal fingerprints per replicate.
        {"fingerprint32", static_cast<double>(r.fingerprint & 0xFFFFFFFFULL)},
        {"tables_valid", r.tables_valid ? 1.0 : 0.0},
    };
  };
}

std::string fmt_zipf(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", s);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Args args(argc, argv);
  exp::RegressOptions regress;
  regress.metric = "sojourn_p99";
  regress.higher_is_better = false;
  exp::CliOptions cli = exp::parse_cli(args, /*default_replicates=*/3, regress);

  ShardWorkloadConfig base;
  base.shards = static_cast<std::size_t>(args.get_int("shards", 8));
  base.threads_per_shard = static_cast<int>(args.get_int("tps", 2));
  base.update_pct = static_cast<int>(args.get_int("update-pct", 20));
  base.keyspace = static_cast<std::size_t>(args.get_int("keyspace", 4096));
  base.epoch_cycles =
      static_cast<sim::Cycles>(args.get_int("epoch-cycles", 4096));
  base.domain_threads = static_cast<int>(args.get_int("domain-threads", 1));
  base.per_shard_lemming = true;
  base.load.model = service::LoadModel::kPoisson;
  base.load.requests =
      static_cast<std::uint64_t>(args.get_int("requests", 6000));
  base.load.sessions =
      static_cast<std::uint64_t>(args.get_int("sessions", 512));
  base.load.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 512));

  const SchemeRow schemes[] = {
      {"hle", "hle", "hle", locks::LockKind::kTtas},
      {"hle-scm", "hle-scm", "hle-scm", locks::LockKind::kTtas},
      {"slr-cc", "slr:subscribe=commit-checked",
       "slr:subscribe=commit-checked", locks::LockKind::kTtas},
      {"rw-shared", "hle-retries", "hle-retries:mode=shared",
       locks::LockKind::kRw},
  };
  const double offered_axis[] = {2000.0, 5000.0, 9000.0};
  const double zipf_axis[] = {0.0, 0.9};

  exp::ExperimentSpec spec;
  spec.name = "figservice";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;

  for (const SchemeRow& row : schemes) {
    for (const double zipf_s : zipf_axis) {
      for (const double offered : offered_axis) {
        ShardWorkloadConfig cfg = base;
        cfg.scheme = harness::parse_scheme(row.update_spec);
        cfg.read_scheme = harness::parse_scheme(row.lookup_spec);
        cfg.lock = row.lock;
        cfg.zipf_s = zipf_s;
        cfg.load.offered_ops_per_mcycle = offered;
        exp::Cell cell;
        cell.axes = {{"scheme", row.label},
                     {"zipf", fmt_zipf(zipf_s)},
                     {"offered", harness::Table::num(offered, 0)}};
        cell.id = exp::axes_id(cell.axes);
        cell.run = service_run(cfg);
        spec.cells.push_back(std::move(cell));
      }
    }
  }

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Open-system service tails: %llu Poisson requests over %zu shards "
      "(%d server(s)/shard, %d%% updates, keyspace %zu, queue cap %zu, "
      "%d replicate(s)/cell); latencies in virtual cycles\n\n",
      static_cast<unsigned long long>(base.load.requests), base.shards,
      base.threads_per_shard, base.update_pct, base.keyspace,
      base.load.queue_capacity, spec.replicates);

  std::size_t next = 0;  // cells were appended in table order
  for (const SchemeRow& row : schemes) {
    for (const double zipf_s : zipf_axis) {
      std::printf("scheme %s, zipf %s (lock %s; lookups %s, updates %s)\n",
                  row.label, fmt_zipf(zipf_s).c_str(),
                  locks::to_string(row.lock), row.lookup_spec,
                  row.update_spec);
      harness::Table t({"offered", "sojourn p50", "p99", "p99.9",
                        "qdelay p99", "service p99", "max depth", "dropped",
                        "ops/Mcycle", "lemming shards"});
      for (const double offered : offered_axis) {
        const auto& r = results[next++];
        t.row({harness::Table::num(offered, 0),
               harness::Table::num(r.metric_mean("sojourn_p50"), 0),
               harness::Table::num(r.metric_mean("sojourn_p99"), 0),
               harness::Table::num(r.metric_mean("sojourn_p999"), 0),
               harness::Table::num(r.metric_mean("qdelay_p99"), 0),
               harness::Table::num(r.metric_mean("service_p99"), 0),
               harness::Table::num(r.metric_mean("max_queue_depth"), 0),
               harness::Table::num(r.metric_mean("dropped"), 0),
               harness::Table::num(r.metric_mean("ops_per_mcycle"), 0),
               harness::Table::num(r.metric_mean("lemming_shards"), 1)});
      }
      t.print();
      std::printf("\n");
    }
  }

  std::printf(
      "Expected shape: below saturation the sojourn tail is the service "
      "tail; past it (and earlier on hot shards under skew) queueing delay "
      "dominates, depth hits the cap and requests shed.  The fair-serialized "
      "scheme (hle-scm) keeps the p99.9/p50 spread bounded where optimistic "
      "retry stretches it.\n");
  return exp::finish_cli(spec, results, cli);
}
