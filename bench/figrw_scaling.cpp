// Reader-writer elision: reader scaling and the writer-triggered lemming
// effect on a read-mostly tree, under the mode= policy axis.
//
// Part A (reader scaling): a pure-lookup workload (0% updates) at 1..8
// threads.  Lookups run the spec under test (e.g. "hle:mode=shared" —
// concurrently-eliding readers whose fallback is a shared rw-lock
// acquisition); speedup is normalized to a single thread with no locking.
//
// Part B (writer-triggered lemming): 8 threads with a swept update
// fraction.  Updates always run the spec's exclusive-mode twin, so a
// writer's CAS on the rw word dooms every eliding reader at once — the
// nonspec_fraction column is the lemming signal.
//
// Flags: --size=N --duration-ms=F
//        --schemes=SPEC[;SPEC...]  registry policy specs for the lookup
//                            side (semicolon-separated; default: exclusive
//                            baselines plus the shared/update-mode specs)
//        --jobs=N --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "elision/registry.h"
#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

namespace {

// Updates run the same policy with the mode stripped back to exclusive:
// the read-mostly family elides/serializes its readers per the spec while
// writers always take (or subscribe to) the lock exclusively.
elision::Policy exclusive_twin(elision::Policy p) {
  p.mode = locks::LockMode::kExclusive;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const exp::CliOptions cli = exp::parse_cli(args);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 128));
  const double duration_ms = args.get_double("duration-ms", 1.0);

  WorkloadConfig base;
  base.tree_size = size;
  base.lock = locks::LockKind::kRw;
  base.duration = static_cast<sim::Cycles>(duration_ms * base.costs.cycles_per_ms);

  exp::ExperimentSpec spec;
  spec.name = "figrw";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;

  // Normalization baseline: single thread, no locking, pure lookups.
  {
    WorkloadConfig cfg = base;
    cfg.threads = 1;
    cfg.update_pct = 0;
    cfg.scheme = elision::Scheme::kNoLock;
    exp::add_workload_cell(spec, {{"scheme", "NoLock"}, {"threads", "1"}}, cfg);
  }

  // The lookup-side policy axis (semicolon-separated like fig9).
  std::vector<elision::Policy> policies;
  const std::string scheme_list = args.get("schemes", "");
  for (std::size_t pos = 0; pos < scheme_list.size();) {
    std::size_t semi = scheme_list.find(';', pos);
    if (semi == std::string::npos) semi = scheme_list.size();
    if (semi > pos) {
      policies.push_back(harness::parse_scheme(scheme_list.substr(pos, semi - pos)));
    }
    pos = semi + 1;
  }
  if (policies.empty()) {
    for (const char* s :
         {"standard", "hle", "hle:mode=shared", "hle-retries:mode=shared",
          "hle-scm:mode=update,aux=ticket",
          "slr:mode=shared,subscribe=commit-checked"}) {
      policies.push_back(harness::parse_scheme(s));
    }
  }

  const int thread_axis[] = {1, 2, 4, 8};
  const int update_axis[] = {0, 5, 20, 50};

  // Part A cells: pure readers, thread sweep.
  for (const elision::Policy& policy : policies) {
    for (int threads : thread_axis) {
      WorkloadConfig cfg = base;
      cfg.threads = threads;
      cfg.update_pct = 0;
      cfg.scheme = exclusive_twin(policy);
      cfg.read_scheme = policy;
      exp::add_workload_cell(spec,
                             {{"scheme", elision::policy_spec(policy)},
                              {"lock", locks::to_string(cfg.lock)},
                              {"threads", std::to_string(threads)}},
                             cfg);
    }
  }
  // Part B cells: 8 threads, update-fraction sweep.
  for (const elision::Policy& policy : policies) {
    for (int updates : update_axis) {
      WorkloadConfig cfg = base;
      cfg.threads = 8;
      cfg.update_pct = updates;
      cfg.scheme = exclusive_twin(policy);
      cfg.read_scheme = policy;
      exp::add_workload_cell(spec,
                             {{"scheme", elision::policy_spec(policy)},
                              {"lock", locks::to_string(cfg.lock)},
                              {"updates", std::to_string(updates)},
                              {"threads", "8"}},
                             cfg);
    }
  }

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Reader-writer elision on a %zu-node tree over the RW lock "
      "(%d replicate(s)/cell)\n\n",
      size, spec.replicates);

  const double nolock = results[0].metric_mean("ops_per_mcycle");
  std::size_t next = 1;  // cells were appended in table order

  std::printf(
      "Part A: pure-lookup speedup vs 1 thread with no locking (columns: "
      "threads)\n");
  Table scal({"lookup policy", "1", "2", "4", "8"});
  for (const elision::Policy& policy : policies) {
    std::vector<std::string> row{elision::policy_spec(policy)};
    for (int threads : thread_axis) {
      (void)threads;
      row.push_back(
          Table::num(results[next].metric_mean("ops_per_mcycle") / nolock));
      ++next;
    }
    scal.row(std::move(row));
  }
  scal.print();

  std::printf(
      "\nPart B: 8 threads, swept update fraction; ops/Mcycle and the "
      "non-speculative fraction (lemming signal) per cell\n");
  Table lem({"lookup policy", "0%", "5%", "20%", "50%"});
  for (const elision::Policy& policy : policies) {
    std::vector<std::string> row{elision::policy_spec(policy)};
    for (int updates : update_axis) {
      (void)updates;
      row.push_back(
          Table::num(results[next].metric_mean("ops_per_mcycle")) + " (" +
          Table::num(results[next].metric_mean("nonspec_fraction")) + ")");
      ++next;
    }
    lem.row(std::move(row));
  }
  lem.print();

  std::printf(
      "\nExpected shape: single-attempt hle:mode=shared exhibits the "
      "*reader* lemming — one spurious abort makes a reader fall back, its "
      "reader-count update writes the lock line and dooms every in-flight "
      "eliding reader, and with no retry budget each of those falls back "
      "too, sustaining the storm (high nonspec even at 0%% updates).  A "
      "retry budget (hle-retries:mode=shared) or SLR's late subscription "
      "rides the storm out and scales like exclusive elision; writer "
      "bursts then grow the shared-mode rows' nonspec fraction fastest, "
      "since one writer dooms every eliding reader at once.\n");
  return exp::finish_cli(spec, results, cli);
}
