// Google-benchmark micro-benchmarks of the lock implementations and
// elision building blocks: wall-clock cost of simulated acquire/release
// round trips, elided attempts, and the virtual-cycle price each lock pays
// per handoff.  These track the harness's own performance.
#include <benchmark/benchmark.h>

#include "elision/elided_lock.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace {

using namespace sihle;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

template <class Lock>
sim::Task<void> acquire_release_loop(Ctx& c, Lock& lock, int n) {
  for (int i = 0; i < n; ++i) {
    co_await lock.acquire(c);
    co_await c.work(10);
    co_await lock.release(c);
  }
}

template <class Lock>
void BM_UncontendedAcquireRelease(benchmark::State& state) {
  std::uint64_t iters = 0;
  for (auto _ : state) {
    Machine m;
    Lock lock(m);
    m.spawn([&](Ctx& c) { return acquire_release_loop(c, lock, 2000); });
    m.run();
    iters += 2000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(iters));
}
BENCHMARK(BM_UncontendedAcquireRelease<locks::TTASLock>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UncontendedAcquireRelease<locks::MCSLock>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UncontendedAcquireRelease<locks::TicketLock>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UncontendedAcquireRelease<locks::CLHLock>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UncontendedAcquireRelease<locks::ElidableTicketLock>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UncontendedAcquireRelease<locks::ElidableCLHLock>)
    ->Unit(benchmark::kMillisecond);

template <class Lock>
void BM_ContendedHandoffs(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t iters = 0;
  for (auto _ : state) {
    Machine m;
    Lock lock(m);
    for (int t = 0; t < threads; ++t) {
      m.spawn([&](Ctx& c) { return acquire_release_loop(c, lock, 300); });
    }
    m.run();
    iters += static_cast<std::uint64_t>(threads) * 300;
  }
  state.SetItemsProcessed(static_cast<int64_t>(iters));
}
BENCHMARK(BM_ContendedHandoffs<locks::TTASLock>)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ContendedHandoffs<locks::MCSLock>)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

struct Cell {
  LineHandle line;
  mem::Shared<std::uint64_t> v;
  explicit Cell(Machine& m) : line(m), v(line.line(), 0) {}
};

sim::Task<void> elided_loop(Ctx& c, elision::ElidedLock& lock, Cell& cell,
                            int n, stats::OpStats& st) {
  const elision::Policy policy = elision::Scheme::kHle;
  for (int i = 0; i < n; ++i) {
    co_await elision::run_cs(
        policy, c, lock,
        [&cell](Ctx& cc) -> sim::Task<void> {
          return [](Ctx& c2, Cell& k) -> sim::Task<void> {
            const std::uint64_t v = co_await c2.load(k.v);
            co_await c2.store(k.v, v + 1);
          }(cc, cell);
        },
        st);
  }
}

template <locks::LockKind K>
void BM_ElidedCriticalSection(benchmark::State& state) {
  std::uint64_t iters = 0;
  for (auto _ : state) {
    Machine m;
    elision::ElidedLock lock(m, K);
    Cell cell(m);
    stats::OpStats st;
    m.spawn([&](Ctx& c) { return elided_loop(c, lock, cell, 1500, st); });
    m.run();
    iters += 1500;
  }
  state.SetItemsProcessed(static_cast<int64_t>(iters));
}
BENCHMARK(BM_ElidedCriticalSection<locks::LockKind::kTtas>)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ElidedCriticalSection<locks::LockKind::kMcs>)
    ->Unit(benchmark::kMillisecond);

}  // namespace
