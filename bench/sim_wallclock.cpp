// Wall-clock throughput of the simulator engine itself: how many simulation
// events (and committed transactions) per *host* second the discrete-event
// core sustains.  This is the perf gate for the hot-path work
// (docs/PERFORMANCE.md): unlike every figure bench, the metric here is real
// time, not virtual cycles, so it catches regressions — an accidental
// allocation or linear scan on the per-event path — that are invisible in
// simulated results.
//
// Scenarios mirror bench/micro_sim.cpp so the two suites cross-check:
//   scenario=nontx_load                1 thread, 10k plain loads
//   scenario=committed_tx              1 thread, 5k two-access transactions
//   scenario=contended_tree/scheme=X   8 threads × 500 rbtree ops under X
//
// sihle-lint: disable-file=R005 — this bench *measures* host wall-clock
// time; the time reading never feeds a simulation decision, so it is not an
// unlogged scheduling choice.
//
// Each measurement repeats its scenario until at least --min-time host
// seconds have elapsed and reports the aggregate rate, so short scenarios
// are not quantization noise.  Replicates vary the simulation seed (which
// perturbs the simulated schedule, i.e. the work mix) — host-time jitter
// across replicates is what the regression gate's CI logic consumes.
//
// Flags: --min-time=SEC (default 0.2)
//        --jobs=N (default 1: wall-clock fidelity wants an unloaded host)
//        --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
//
// Exports sihle-results v1 (--out); the committed baseline lives at
// results/BENCH_sim_wallclock.json and is gated warn-not-fail in CI.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ds/rbtree.h"
#include "elision/elided_lock.h"
#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/table.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

using namespace sihle;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

namespace {

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

// Work done by one simulated pass of a scenario.
struct PassCounts {
  std::uint64_t events = 0;  // simulation events (executor resumes)
  std::uint64_t txs = 0;     // committed hardware transactions
};

std::uint64_t total_events(Machine& m) {
  std::uint64_t events = 0;
  for (std::uint32_t t = 0; t < m.exec().thread_count(); ++t) {
    events += m.exec().thread(t).events;
  }
  return events;
}

sim::Task<void> load_loop(Ctx& c, Counter& cnt, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = co_await c.load(cnt.value);
    (void)v;
  }
}

PassCounts run_nontx_load(std::uint64_t seed) {
  Machine::Config mc;
  mc.seed = seed;
  Machine m(mc);
  Counter cnt(m);
  m.spawn([&](Ctx& c) { return load_loop(c, cnt, 10000); });
  m.run();
  return {total_events(m), 0};
}

sim::Task<void> tx_loop(Ctx& c, Counter& cnt, std::uint64_t n,
                        std::uint64_t& commits) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto s = co_await c.with_tx([&c, &cnt] {
      return [](Ctx& cc, Counter& k) -> sim::Task<void> {
        const std::uint64_t v = co_await cc.load(k.value);
        co_await cc.store(k.value, v + 1);
      }(c, cnt);
    });
    if (s.ok()) ++commits;
  }
}

PassCounts run_committed_tx(std::uint64_t seed) {
  Machine::Config mc;
  mc.seed = seed;
  Machine m(mc);
  Counter cnt(m);
  std::uint64_t commits = 0;
  m.spawn([&](Ctx& c) { return tx_loop(c, cnt, 5000, commits); });
  m.run();
  return {total_events(m), commits};
}

sim::Task<void> contended_worker(Ctx& c, elision::Policy policy,
                                 elision::ElidedLock& lock, ds::RBTree& tree,
                                 int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(256));
    co_await elision::run_cs(
        policy, c, lock,
        [&tree, key](Ctx& cc) -> sim::Task<void> {
          return [](Ctx& c2, ds::RBTree& t, std::int64_t k) -> sim::Task<void> {
            const bool r = co_await t.insert(c2, k);
            if (!r) co_await t.erase(c2, k);
          }(cc, tree, key);
        },
        st);
  }
}

PassCounts run_contended_tree(elision::Scheme scheme, std::uint64_t seed) {
  Machine::Config mc;
  mc.seed = seed;
  mc.htm.spurious_abort_per_access = 1e-4;
  Machine m(mc);
  // Same sync-line allocation order as the pre-ElidedLock version: TTAS
  // main lock, MCS aux, then the tree.
  elision::ElidedLock lock(m, locks::LockKind::kTtas);
  ds::RBTree tree(m);
  for (int k = 0; k < 256; k += 2) tree.debug_insert(k);
  std::vector<stats::OpStats> st(8);
  for (int t = 0; t < 8; ++t) {
    m.spawn([&, t](Ctx& c) {
      return contended_worker(c, scheme, lock, tree, 500, st[t]);
    });
  }
  m.run();
  PassCounts counts{total_events(m), 0};
  for (const auto& s : st) counts.txs += s.spec_commits;
  return counts;
}

// Wraps a single-pass scenario into a RunFn that repeats it until at least
// `min_time_s` host seconds have elapsed (seed advances per pass so repeats
// are not identical simulations) and reports the aggregate rates.
// Scenarios that cannot commit transactions (plain loads; Standard, which
// never speculates) set has_txs=false and omit txs_per_sec entirely — an
// exported [0,0,...] sample vector is a recording artifact, not a rate, and
// would wedge a gate run with --metric=txs_per_sec (bench_regress also
// skips all-zero baseline metrics defensively).
template <class Pass>
exp::RunFn timed_run(Pass pass, double min_time_s, bool has_txs = true) {
  return [pass, min_time_s, has_txs](std::uint64_t seed) {
    using clock = std::chrono::steady_clock;
    PassCounts total;
    double passes = 0.0;
    const clock::time_point start = clock::now();
    clock::time_point now = start;
    do {
      const PassCounts p = pass(seed + static_cast<std::uint64_t>(passes));
      total.events += p.events;
      total.txs += p.txs;
      passes += 1.0;
      now = clock::now();
    } while (std::chrono::duration<double>(now - start).count() < min_time_s);
    const double elapsed = std::chrono::duration<double>(now - start).count();
    exp::MetricList metrics{
        {"events_per_sec", static_cast<double>(total.events) / elapsed},
    };
    if (has_txs) {
      metrics.push_back(
          {"txs_per_sec", static_cast<double>(total.txs) / elapsed});
    }
    metrics.push_back({"passes", passes});
    return metrics;
  };
}

}  // namespace

int main(int argc, char** argv) {
  harness::Args args(argc, argv);
  exp::RegressOptions regress;
  regress.metric = "events_per_sec";
  regress.higher_is_better = true;
  // Wall-clock rates are far noisier than simulated-cycle metrics; the
  // committed baseline comes from a different (likely faster) host than CI
  // runners, so the gate is advisory there (warn-not-fail in ci.yml).
  regress.noise_rel = 0.25;
  exp::CliOptions cli = exp::parse_cli(args, /*default_replicates=*/3, regress);
  // parse_cli's 0 means "one job per core"; wall-clock measurement wants a
  // quiet host, so unlike the figure benches the default here is serial.
  if (args.get("jobs", "").empty()) cli.jobs = 1;
  // Wall-clock rates only make sense relative to the host that produced
  // them: record it in the exported document.
  cli.record_host = true;
  const double min_time_s = args.get_double("min-time", 0.2);

  exp::ExperimentSpec spec;
  spec.name = "sim_wallclock";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;

  {
    exp::Cell cell;
    cell.axes = {{"scenario", "nontx_load"}};
    cell.id = exp::axes_id(cell.axes);
    cell.run = timed_run(run_nontx_load, min_time_s, /*has_txs=*/false);
    spec.cells.push_back(std::move(cell));
  }
  {
    exp::Cell cell;
    cell.axes = {{"scenario", "committed_tx"}};
    cell.id = exp::axes_id(cell.axes);
    cell.run = timed_run(run_committed_tx, min_time_s);
    spec.cells.push_back(std::move(cell));
  }
  for (const elision::Scheme s :
       {elision::Scheme::kStandard, elision::Scheme::kHle,
        elision::Scheme::kHleScm, elision::Scheme::kOptSlr}) {
    exp::Cell cell;
    cell.axes = {{"scenario", "contended_tree"},
                 {"scheme", elision::to_string(s)}};
    cell.id = exp::axes_id(cell.axes);
    // Standard never speculates, so it can never commit a transaction.
    const bool has_txs = s != elision::Scheme::kStandard;
    cell.run = timed_run(
        [s](std::uint64_t seed) { return run_contended_tree(s, seed); },
        min_time_s, has_txs);
    spec.cells.push_back(std::move(cell));
  }

  const auto results = exp::run_experiment(spec, {cli.jobs});

  harness::Table table({"cell", "events/sec", "txs/sec", "passes"});
  for (const auto& cell : results) {
    const auto ev = cell.metric("events_per_sec");
    const auto tx = cell.metric("txs_per_sec");
    const auto ps = cell.metric("passes");
    table.row({cell.id, harness::Table::num(ev.mean(), 0),
               tx.samples().empty() ? "-" : harness::Table::num(tx.mean(), 0),
               harness::Table::num(ps.mean(), 1)});
  }
  table.print(stdout);

  return exp::finish_cli(spec, results, cli);
}
