// Cost-model ablation (ours) — DESIGN.md claims the paper's qualitative
// results are protocol phenomena, not artifacts of the virtual-time
// constants.  This bench re-runs a Figure-9-style point (128-node tree, 8
// threads, 20% updates) across a range of shared-access costs and abort
// penalties and reports each scheme's speedup over the standard lock.  The
// orderings that matter (MCS: SCM/SLR >> retries ~ HLE ~ 1) should hold at
// every setting; the absolute ratios shift.
//
// Flags: --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  struct Setting {
    const char* name;
    sim::Cycles access;
    sim::Cycles abort_penalty;
  };
  const Setting settings[] = {
      {"L1-hit accesses (12cyc), abort 170", 12, 170},
      {"L2-ish accesses (25cyc), abort 170", 25, 170},
      {"default: miss-dominated (40cyc), abort 170", 40, 170},
      {"slow memory (70cyc), abort 170", 70, 170},
      {"default accesses, cheap abort (60cyc)", 40, 60},
      {"default accesses, dear abort (400cyc)", 40, 400},
  };

  std::printf(
      "Cost-model ablation: 128-node tree, 8 threads, 20%% updates; each "
      "cell = scheme speedup over the standard version of the lock\n\n");

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    Table table({"setting", "HLE", "HLE-retries", "HLE-SCM", "opt SLR", "SLR-SCM"});
    for (const Setting& s : settings) {
      WorkloadConfig cfg;
      cfg.lock = lock;
      cfg.tree_size = 128;
      cfg.update_pct = 20;
      cfg.costs.mem_access = s.access;
      cfg.costs.tx_access = s.access;
      cfg.costs.rmw = s.access + 20;
      cfg.costs.tx_abort = s.abort_penalty;
      cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);

      cfg.scheme = elision::Scheme::kStandard;
      const double base = harness::average_throughput(cfg, seeds);

      std::vector<std::string> row{s.name};
      for (elision::Scheme scheme :
           {elision::Scheme::kHle, elision::Scheme::kHleRetries,
            elision::Scheme::kHleScm, elision::Scheme::kOptSlr,
            elision::Scheme::kSlrScm}) {
        cfg.scheme = scheme;
        row.push_back(Table::num(harness::average_throughput(cfg, seeds) / base));
      }
      table.row(std::move(row));
    }
    std::printf("%s lock:\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: the MCS ordering (SCM/SLR far above HLE~1) holds at every "
      "setting.  The HLE-retries-vs-MCS collapse hinges on the critical "
      "section outlasting the retry burn, so it weakens when accesses are "
      "implausibly cheap (L1-hit row) — exactly the sensitivity DESIGN.md "
      "documents.\n");
  return 0;
}
