// §7 remark — "Our experience with fine-grained benchmarks, such as those
// in the PARSEC suite, is that in general applying HLE there shows little
// performance impact because the benchmarks are already optimized to avoid
// contention."
//
// Reproduction: the same hash-table workload run two ways — one global
// coarse lock (the paper's target scenario) vs per-bucket fine-grained
// locks (an already-optimized program).  Elision transforms the coarse
// version; on the fine-grained version it has little left to win.
//
// Flags: --threads=N --size=N --updates=PCT --seeds=N --ops=N
#include <cstdio>
#include <memory>
#include <vector>

#include "ds/hashtable.h"
#include "elision/elided_lock.h"
#include "harness/cli.h"
#include "harness/table.h"
#include "runtime/ctx.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using runtime::Ctx;
using runtime::Machine;

namespace {

constexpr int kStripes = 16;

std::size_t stripe_of(std::int64_t key) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) >> 60);
}

sim::Task<void> table_op(Ctx& c, ds::HashTable& t, std::int64_t key, int action) {
  if (action == 0) {
    const bool r = co_await t.insert(c, key);
    (void)r;
  } else if (action == 1) {
    const bool r = co_await t.erase(c, key);
    (void)r;
  } else {
    const bool r = co_await t.contains(c, key);
    (void)r;
  }
}

enum class Granularity { kCoarse, kFine };

sim::Cycles run(Granularity g, elision::Scheme scheme, int threads,
                std::size_t size, int updates, int ops, std::uint64_t seed,
                stats::OpStats* out) {
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.htm.spurious_abort_per_access = 1e-4;
  Machine m(cfg);
  ds::HashTable table(m, size);
  {
    sim::Rng fill(seed ^ 0xF00D);
    for (std::size_t i = 0; i < size; ++i) {
      table.debug_insert(static_cast<std::int64_t>(fill.below(2 * size)));
    }
  }
  // Coarse: one lock.  Fine: one lock per key stripe (a fine-grained
  // program still takes a lock per operation, just a rarely-contended one).
  // Each ElidedLock allocates its main lock's sync line then its MCS aux
  // line, matching the historical TTAS/MCS interleaving.
  std::vector<std::unique_ptr<elision::ElidedLock>> locks_;
  const int nlocks = g == Granularity::kCoarse ? 1 : kStripes;
  for (int i = 0; i < nlocks; ++i) {
    locks_.push_back(
        std::make_unique<elision::ElidedLock>(m, locks::LockKind::kTtas));
  }

  std::vector<stats::OpStats> st(threads);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) -> sim::Task<void> {
      return [](Ctx& cc, Granularity gg, elision::Policy s, ds::HashTable& tb,
                std::vector<std::unique_ptr<elision::ElidedLock>>& ls,
                std::uint64_t domain, int upd, int n,
                stats::OpStats& stats_out) -> sim::Task<void> {
        for (int i = 0; i < n; ++i) {
          const auto key = static_cast<std::int64_t>(cc.rng().below(domain));
          const int dice = static_cast<int>(cc.rng().below(100));
          const int action = dice < upd / 2 ? 0 : (dice < upd ? 1 : 2);
          const std::size_t li =
              gg == Granularity::kCoarse ? 0 : stripe_of(key) % ls.size();
          co_await elision::run_cs(
              s, cc, *ls[li],
              [&tb, key, action](Ctx& c2) { return table_op(c2, tb, key, action); },
              stats_out);
        }
      }(c, g, scheme, table, locks_, 2 * size, updates, ops, st[t]);
    });
  }
  m.run();
  for (const auto& s : st) *out += s;
  return m.exec().max_clock();
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const auto size = static_cast<std::size_t>(args.get_int("size", 1024));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int ops = static_cast<int>(args.get_int("ops", 1500));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));

  std::printf(
      "Fine-grained remark (§7): elision gains on a coarse single-lock hash "
      "table vs a %d-stripe fine-grained one (%d threads, %d%% updates)\n\n",
      kStripes, threads, updates);

  Table table({"locking", "standard time", "HLE time", "HLE gain", "SLR time",
               "SLR gain"});
  for (Granularity g : {Granularity::kCoarse, Granularity::kFine}) {
    double base = 0.0;
    double hle = 0.0;
    double slr = 0.0;
    for (int s = 0; s < seeds; ++s) {
      stats::OpStats dummy;
      base += static_cast<double>(run(g, elision::Scheme::kStandard, threads, size,
                                      updates, ops, 1 + s, &dummy));
      hle += static_cast<double>(run(g, elision::Scheme::kHle, threads, size,
                                     updates, ops, 1 + s, &dummy));
      slr += static_cast<double>(run(g, elision::Scheme::kOptSlr, threads, size,
                                     updates, ops, 1 + s, &dummy));
    }
    table.row({g == Granularity::kCoarse ? "coarse (1 lock)" : "fine (16 stripes)",
               Table::num(base / seeds, 0), Table::num(hle / seeds, 0),
               Table::num(base / hle, 2), Table::num(slr / seeds, 0),
               Table::num(base / slr, 2)});
  }
  table.print();
  std::printf(
      "\nExpected: multi-fold gains on the coarse lock; close to 1x on the "
      "fine-grained version — it was already optimized to avoid contention, "
      "which is the paper's argument for evaluating coarse-grained "
      "programs.\n");
  return 0;
}
