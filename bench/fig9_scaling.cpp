// Figure 9 — "Execution results on a small tree (128 nodes) under moderate
// contention": speedup of all six schemes at 1, 2, 4 and 8 threads,
// normalized to a single thread with no locking.
//
// Runs on the parallel experiment engine (docs/EXPERIMENTS.md): every
// (scheme × lock × threads) cell is replicated over consecutive seeds and
// fanned out across host threads.
//
// Flags: --size=N --updates=PCT --duration-ms=F
//        --schemes=SPEC[;SPEC...]  registry policy specs, e.g.
//                            "hle-scm:aux=ticket,retries=5;slr:backoff=exp"
//                            (semicolon-separated — specs themselves contain
//                            commas; default: the six paper schemes)
//        --jobs=N --replicates=K --seed=S --out=FILE --baseline=FILE --noise=F
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "elision/registry.h"
#include "exp/harness.h"
#include "harness/cli.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const exp::CliOptions cli = exp::parse_cli(args);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 128));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  WorkloadConfig base;
  base.tree_size = size;
  base.update_pct = updates;
  base.duration = static_cast<sim::Cycles>(duration_ms * base.costs.cycles_per_ms);

  exp::ExperimentSpec spec;
  spec.name = "fig9";
  spec.replicates = cli.replicates;
  spec.base_seed = cli.base_seed;

  // Normalization baseline: single thread, no locking.
  {
    WorkloadConfig cfg = base;
    cfg.threads = 1;
    cfg.scheme = elision::Scheme::kNoLock;
    exp::add_workload_cell(spec, {{"scheme", "NoLock"}, {"threads", "1"}}, cfg);
  }
  // The scheme axis: the six paper schemes by default, or any registry
  // policy specs via --schemes= (axis value = elision::policy_label, which
  // is the canonical display name for paper schemes, so the default cell
  // ids — and the committed baseline — are unchanged).
  // Semicolon-separated: the spec grammar uses commas for parameters.
  std::vector<elision::Policy> policies;
  const std::string scheme_list = args.get("schemes", "");
  for (std::size_t pos = 0; pos < scheme_list.size();) {
    std::size_t semi = scheme_list.find(';', pos);
    if (semi == std::string::npos) semi = scheme_list.size();
    if (semi > pos) {
      policies.push_back(harness::parse_scheme(scheme_list.substr(pos, semi - pos)));
    }
    pos = semi + 1;
  }
  if (policies.empty()) {
    policies.assign(elision::kAllSchemes.begin(), elision::kAllSchemes.end());
  }

  const locks::LockKind lock_kinds[] = {locks::LockKind::kTtas,
                                        locks::LockKind::kMcs};
  for (locks::LockKind lock : lock_kinds) {
    for (const elision::Policy& policy : policies) {
      for (int threads : {1, 2, 4, 8}) {
        WorkloadConfig cfg = base;
        cfg.lock = lock;
        cfg.scheme = policy;
        cfg.threads = threads;
        exp::add_workload_cell(spec,
                               {{"scheme", elision::policy_label(policy)},
                                {"lock", locks::to_string(lock)},
                                {"threads", std::to_string(threads)}},
                               cfg);
      }
    }
  }

  const std::vector<exp::CellResult> results =
      exp::run_experiment(spec, {cli.jobs});

  std::printf(
      "Figure 9: scheme scaling on a %zu-node tree, %d%% updates; speedup "
      "normalized to 1 thread with no locking (%d replicate(s)/cell)\n\n",
      size, updates, spec.replicates);

  const double nolock = results[0].metric_mean("ops_per_mcycle");
  std::size_t next = 1;  // cells were appended in table order
  for (locks::LockKind lock : lock_kinds) {
    Table table({"scheme", "1", "2", "4", "8"});
    for (const elision::Policy& policy : policies) {
      std::vector<std::string> row{elision::policy_label(policy)};
      for (int threads : {1, 2, 4, 8}) {
        (void)threads;
        row.push_back(
            Table::num(results[next].metric_mean("ops_per_mcycle") / nolock));
        ++next;
      }
      table.row(std::move(row));
    }
    std::printf("%s lock (columns: threads):\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: HLE-MCS never scales; HLE-TTAS stops scaling past 4 "
      "threads; HLE-retries rescues TTAS but not MCS at 8 threads; the "
      "software-assisted schemes (HLE-SCM, opt SLR, SLR-SCM) scale with the "
      "thread count on both locks, closing the MCS/TTAS gap.\n");
  return exp::finish_cli(spec, results, cli);
}
