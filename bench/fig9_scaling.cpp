// Figure 9 — "Execution results on a small tree (128 nodes) under moderate
// contention": speedup of all six schemes at 1, 2, 4 and 8 threads,
// normalized to a single thread with no locking.
//
// Flags: --size=N --updates=PCT --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 128));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::printf(
      "Figure 9: scheme scaling on a %zu-node tree, %d%% updates; speedup "
      "normalized to 1 thread with no locking\n\n",
      size, updates);

  WorkloadConfig base;
  base.tree_size = size;
  base.update_pct = updates;
  base.duration = static_cast<sim::Cycles>(duration_ms * base.costs.cycles_per_ms);

  // Baseline: single thread, no locking.
  double nolock = 0.0;
  {
    WorkloadConfig cfg = base;
    cfg.threads = 1;
    cfg.scheme = elision::Scheme::kNoLock;
    nolock = harness::average_throughput(cfg, seeds);
  }

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    Table table({"scheme", "1", "2", "4", "8"});
    for (elision::Scheme scheme : elision::kAllSchemes) {
      std::vector<std::string> row{elision::to_string(scheme)};
      for (int threads : {1, 2, 4, 8}) {
        WorkloadConfig cfg = base;
        cfg.lock = lock;
        cfg.scheme = scheme;
        cfg.threads = threads;
        row.push_back(Table::num(harness::average_throughput(cfg, seeds) / nolock));
      }
      table.row(std::move(row));
    }
    std::printf("%s lock (columns: threads):\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: HLE-MCS never scales; HLE-TTAS stops scaling past 4 "
      "threads; HLE-retries rescues TTAS but not MCS at 8 threads; the "
      "software-assisted schemes (HLE-SCM, opt SLR, SLR-SCM) scale with the "
      "thread count on both locks, closing the MCS/TTAS gap.\n");
  return 0;
}
