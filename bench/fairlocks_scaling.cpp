// §4 footnote — "we have verified that both these locks [ticket, CLH]
// suffer from the same problems reported below for the MCS lock".  This
// bench extends Figure 9 to the whole fair-lock family (MCS, elidable
// ticket, elidable CLH, elidable Anderson): plain HLE collapses and the
// software schemes rescue every one of them.
//
// Flags: --size=N --updates=PCT --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const auto size = static_cast<std::size_t>(args.get_int("size", 128));
  const int updates = static_cast<int>(args.get_int("updates", 20));
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  const double duration_ms = args.get_double("duration-ms", 1.0);

  std::printf(
      "Fair-lock family under elision (%zu-node tree, 8 threads, %d%% "
      "updates); speedup over the standard version of each lock\n\n",
      size, updates);

  const locks::LockKind fair_locks[] = {
      locks::LockKind::kMcs, locks::LockKind::kElidableTicket,
      locks::LockKind::kElidableClh, locks::LockKind::kElidableAnderson};

  Table table({"lock", "HLE", "HLE-retries", "HLE-SCM", "opt SLR", "SLR-SCM",
               "HLE nonspec-frac"});
  for (locks::LockKind lock : fair_locks) {
    WorkloadConfig cfg;
    cfg.tree_size = size;
    cfg.update_pct = updates;
    cfg.lock = lock;
    cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);
    cfg.scheme = elision::Scheme::kStandard;
    const double base = harness::average_throughput(cfg, seeds);

    std::vector<std::string> row{locks::to_string(lock)};
    stats::OpStats hle_stats;
    for (elision::Scheme scheme :
         {elision::Scheme::kHle, elision::Scheme::kHleRetries,
          elision::Scheme::kHleScm, elision::Scheme::kOptSlr,
          elision::Scheme::kSlrScm}) {
      cfg.scheme = scheme;
      double total = 0.0;
      for (int s = 0; s < seeds; ++s) {
        cfg.seed = 1 + s;
        auto r = harness::run_rbtree_workload(cfg);
        total += r.ops_per_mcycle;
        if (scheme == elision::Scheme::kHle) hle_stats += r.stats;
      }
      row.push_back(Table::num(total / seeds / base));
    }
    row.push_back(Table::num(hle_stats.nonspec_fraction(), 3));
    table.row(std::move(row));
  }
  table.print();
  std::printf(
      "\nExpected: every fair lock shows the same signature — plain HLE at "
      "~1x with a ~1.0 non-speculative fraction (the lemming effect), "
      "HLE-retries no better at 8 threads, and the software-assisted "
      "schemes restoring severalfold speedups.\n");
  return 0;
}
