// §3.1 ablation — spurious aborts.  The paper observes that Haswell
// transactions abort spuriously even in perfectly conflict-free workloads,
// and that this alone is enough to lemming fair locks ("even in a read-only
// workload, the MCS lock experiences a severe lemming effect behavior due
// to spurious aborts").  This bench sweeps the injected spurious-abort rate
// on a lookups-only workload and reports, per lock, the HLE non-speculative
// fraction and speedup over the standard lock.
//
// Flags: --size=N --threads=N --seeds=N --duration-ms=F
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"

using namespace sihle;
using harness::Args;
using harness::Table;
using harness::WorkloadConfig;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  const std::size_t size = static_cast<std::size_t>(args.get_int("size", 8192));
  const int threads = static_cast<int>(args.get_int("threads", 8));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  const double duration_ms = args.get_double("duration-ms", 1.2);

  std::printf(
      "Ablation: spurious-abort rate on a lookups-only (conflict-free) "
      "workload, tree size %zu, %d threads\n\n",
      size, threads);

  const double rates[] = {0.0, 1e-5, 1e-4, 1e-3};

  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    Table table({"spurious/access", "HLE nonspec-frac", "HLE attempts/op",
                 "HLE speedup vs std", "HLE-SCM speedup vs std"});
    for (double rate : rates) {
      WorkloadConfig cfg;
      cfg.threads = threads;
      cfg.tree_size = size;
      cfg.update_pct = 0;
      cfg.lock = lock;
      cfg.spurious = rate;
      cfg.persistent = 0.0;
      cfg.duration = static_cast<sim::Cycles>(duration_ms * cfg.costs.cycles_per_ms);

      double hle_thr = 0.0;
      double scm_thr = 0.0;
      double std_thr = 0.0;
      stats::OpStats hle_stats;
      for (int s = 0; s < seeds; ++s) {
        cfg.seed = 1 + s;
        cfg.scheme = elision::Scheme::kHle;
        auto r = harness::run_rbtree_workload(cfg);
        hle_thr += r.ops_per_mcycle;
        hle_stats += r.stats;
        cfg.scheme = elision::Scheme::kHleScm;
        scm_thr += harness::run_rbtree_workload(cfg).ops_per_mcycle;
        cfg.scheme = elision::Scheme::kStandard;
        std_thr += harness::run_rbtree_workload(cfg).ops_per_mcycle;
      }
      char rate_label[32];
      std::snprintf(rate_label, sizeof(rate_label), "%g", rate);
      table.row({rate_label, Table::num(hle_stats.nonspec_fraction(), 4),
                 Table::num(hle_stats.attempts_per_op(), 3),
                 Table::num(hle_thr / std_thr), Table::num(scm_thr / std_thr)});
    }
    std::printf("%s lock:\n", locks::to_string(lock));
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: with zero spurious aborts both locks elide perfectly.  "
      "As the rate rises, HLE-TTAS degrades gracefully while HLE-MCS "
      "collapses to the standard lock's throughput; SCM keeps MCS at full "
      "speculative speed regardless.\n");
  return 0;
}
